//! End-to-end tests of the live telemetry subsystem on the threaded
//! runtime: the metrics registry fills in from real pipelines, and the
//! feedback-loop span recorder attributes a source pacing decision to the
//! full backward-propagation hop chain (Deposit → Return → Fold → Pace).

use aru_metrics::journal::HopLeg;
use aru_metrics::{HopKind, JournalKind, Telemetry};
use stampede::prelude::*;
use std::time::Duration;
use vtime::{Micros, Timestamp};

/// Build and run `src --(ch)--> sink`, returning the telemetry bundle,
/// the source/sink thread nodes, and the run report.
fn run_instrumented(
    src_work_ms: u64,
    sink_work_ms: u64,
    run_ms: u64,
) -> (Telemetry, aru_core::NodeId, aru_core::NodeId, RunReport) {
    let mut b = RuntimeBuilder::new(AruConfig::aru_min(), GcMode::Dgc);
    let ch = b.channel::<Vec<u8>>("frames");
    let src = b.thread("src");
    let snk = b.thread("sink");
    let out = b.connect_out(src, &ch).unwrap();
    let mut inp = b.connect_in(&ch, snk).unwrap();

    let mut ts = Timestamp::ZERO;
    b.spawn(src, move |ctx| {
        std::thread::sleep(Duration::from_millis(src_work_ms));
        out.put(ctx, ts, vec![0u8; 10_000])?;
        ts = ts.next();
        Ok(Step::Continue)
    });
    b.spawn(snk, move |ctx| {
        let item = inp.get_latest(ctx)?;
        std::thread::sleep(Duration::from_millis(sink_work_ms));
        ctx.emit_output(item.ts);
        Ok(Step::Continue)
    });

    let telemetry = b.telemetry().clone();
    let (src_node, snk_node) = (src.node(), snk.node());
    let report = b
        .build()
        .unwrap()
        .run_for(Micros::from_millis(run_ms))
        .unwrap();
    (telemetry, src_node, snk_node, report)
}

fn counter(snap: &aru_metrics::RegistrySnapshot, name: &str, label: (&str, &str)) -> u64 {
    snap.counters
        .iter()
        .filter(|(s, _)| {
            s.name == name && s.labels.iter().any(|(k, v)| k == label.0 && v == label.1)
        })
        .map(|(_, v)| *v)
        .sum()
}

/// Retry `run_instrumented` with escalating durations until the pipeline
/// made real progress. These tests assert on wall-clock runs; on a loaded
/// (or single-core) CI box a 250 ms window can be starved by sibling test
/// binaries, which says nothing about the telemetry under test.
fn run_instrumented_until(
    src_work_ms: u64,
    sink_work_ms: u64,
    run_ms: u64,
    min_outputs: usize,
) -> (Telemetry, aru_core::NodeId, aru_core::NodeId, RunReport) {
    let mut last = None;
    for attempt in 0..3 {
        let r = run_instrumented(src_work_ms, sink_work_ms, run_ms << (2 * attempt));
        if r.3.outputs() > min_outputs {
            return r;
        }
        last = Some(r);
    }
    last.expect("at least one attempt ran")
}

#[test]
fn registry_fills_in_from_a_live_pipeline() {
    let (telemetry, _, _, report) = run_instrumented_until(1, 2, 250, 5);
    assert!(report.outputs() > 5);
    // `stop` publishes every buffer's accumulators, so the snapshot holds
    // final totals even though no exporter task was configured.
    let snap = telemetry.registry.snapshot();

    let puts = counter(&snap, "aru_channel_puts_total", ("channel", "frames"));
    let gets = counter(&snap, "aru_channel_gets_total", ("channel", "frames"));
    assert!(puts > 5, "puts recorded: {puts}");
    assert!(gets > 5, "gets recorded: {gets}");
    for thread in ["src", "sink"] {
        let iters = counter(&snap, "aru_iterations_total", ("thread", thread));
        assert!(iters > 5, "{thread} iterations: {iters}");
        let stp = snap
            .gauges
            .iter()
            .find(|(s, _)| {
                s.name == "aru_stp_current_us"
                    && s.labels.contains(&("thread".into(), thread.into()))
            })
            .map(|(_, v)| *v)
            .expect("stp gauge registered");
        assert!(stp > 0.0, "{thread} stp gauge: {stp}");
    }
    // Sampled distributions: the first op on each path is always sampled.
    let occ = snap
        .hists
        .iter()
        .find(|(s, _)| s.name == "aru_channel_occupancy")
        .map(|(_, h)| h.count)
        .expect("occupancy histogram registered");
    assert!(occ > 0, "occupancy samples: {occ}");
    let put_ns = snap
        .hists
        .iter()
        .filter(|(s, _)| s.name == "aru_put_latency_ns")
        .map(|(_, h)| h.count)
        .sum::<u64>();
    assert!(put_ns > 0, "put latency samples: {put_ns}");
}

#[test]
fn pace_attributes_to_deposit_return_fold_chain() {
    // Slow sink, fast source: ARU-min (SourcesOnly) must pace the source,
    // and every pacing change must be attributable hop by hop.
    let (telemetry, src_node, snk_node, report) = run_instrumented_until(1, 10, 500, 3);
    assert!(report.outputs() > 3);
    let spans = telemetry.spans.snapshot();
    let paces = spans.paces();
    assert!(!paces.is_empty(), "source pacing recorded no Pace hops");

    // At least one pacing decision must attribute through the whole
    // backward path: the sink deposited a summary at the channel, the
    // channel returned it to the source with a put, the source folded it,
    // then paced on it.
    let full_chain = paces
        .iter()
        .map(|&p| spans.attribute_pace(p))
        .find(|chain| chain.len() == 4);
    let chain = full_chain.expect("no pace attributable to a full 4-hop chain");
    let hops: Vec<_> = chain.iter().map(|&i| spans.hops[i]).collect();
    assert_eq!(
        hops.iter().map(|h| h.kind).collect::<Vec<_>>(),
        [HopKind::Deposit, HopKind::Return, HopKind::Fold, HopKind::Pace],
        "hops in propagation order"
    );
    let value = hops[3].value;
    assert!(hops.iter().all(|h| h.value == value), "one value links the chain");
    assert!(value > Micros::ZERO, "summary period is a real measurement");
    // Topology: deposit/return observed at the channel (same node), the
    // deposit came from the sink, the return went to the source, and the
    // fold/pace happened on the source thread.
    assert_eq!(hops[0].node, hops[1].node, "deposit and return at the channel");
    assert_eq!(hops[0].peer, snk_node, "deposit credited to the sink");
    assert_eq!(hops[1].peer, src_node, "return handed to the source");
    assert_eq!(hops[2].node, src_node, "fold on the source thread");
    assert_eq!(hops[2].peer, hops[1].node, "fold names the channel it came from");
    assert_eq!(hops[3].node, src_node, "pace on the source thread");
    // Timestamps are causally ordered along the chain.
    assert!(hops.windows(2).all(|w| w[0].t <= w[1].t), "hops time-ordered");
    // And the pacing actually slept at some point in the run.
    assert!(
        spans.hops.iter().any(|h| h.kind == HopKind::Pace && h.extra > Micros::ZERO),
        "no pace hop carried a nonzero sleep"
    );
}

/// Same pipeline as [`run_instrumented`], but the edge is a lock-free
/// queue (`QueueBackend::LockFree`).
fn run_instrumented_lockfree(
    src_work_ms: u64,
    sink_work_ms: u64,
    run_ms: u64,
) -> (Telemetry, aru_core::NodeId, aru_core::NodeId, RunReport) {
    let mut b = RuntimeBuilder::new(AruConfig::aru_min(), GcMode::None)
        .with_queue_backend(QueueBackend::lock_free());
    let q = b.queue::<Vec<u8>>("frames");
    let src = b.thread("src");
    let snk = b.thread("sink");
    let mut out = b.connect_queue_out(src, &q).unwrap();
    let mut inp = b.connect_queue_in(&q, snk).unwrap();

    let mut ts = Timestamp::ZERO;
    b.spawn(src, move |ctx| {
        std::thread::sleep(Duration::from_millis(src_work_ms));
        out.put(ctx, ts, vec![0u8; 10_000])?;
        ts = ts.next();
        Ok(Step::Continue)
    });
    b.spawn(snk, move |ctx| {
        let item = inp.get(ctx)?;
        std::thread::sleep(Duration::from_millis(sink_work_ms));
        ctx.emit_output(item.ts);
        Ok(Step::Continue)
    });

    let telemetry = b.telemetry().clone();
    let (src_node, snk_node) = (src.node(), snk.node());
    let report = b
        .build()
        .unwrap()
        .run_for(Micros::from_millis(run_ms))
        .unwrap();
    (telemetry, src_node, snk_node, report)
}

#[test]
fn lockfree_backend_pace_attributes_through_the_same_chain() {
    // The lock-free ring must not be lineage-blind: a pacing decision on
    // the LF backend has the same Deposit → Return → Fold → Pace evidence
    // as the mutex path, both in the span rings and in the persisted
    // flight-recorder journal.
    let mut picked = None;
    for attempt in 0..3 {
        let r = run_instrumented_lockfree(1, 10, 500 << (2 * attempt));
        let has_pace = !r.0.spans.snapshot().paces().is_empty();
        if r.3.outputs() > 3 && has_pace {
            picked = Some(r);
            break;
        }
        picked = Some(r);
    }
    let (telemetry, src_node, snk_node, report) = picked.expect("at least one attempt ran");
    assert!(report.outputs() > 3);

    let spans = telemetry.spans.snapshot();
    let paces = spans.paces();
    assert!(!paces.is_empty(), "LF source pacing recorded no Pace hops");
    let full_chain = paces
        .iter()
        .map(|&p| spans.attribute_pace(p))
        .find(|chain| chain.len() == 4)
        .expect("no LF pace attributable to a full 4-hop chain");
    let hops: Vec<_> = full_chain.iter().map(|&i| spans.hops[i]).collect();
    assert_eq!(
        hops.iter().map(|h| h.kind).collect::<Vec<_>>(),
        [HopKind::Deposit, HopKind::Return, HopKind::Fold, HopKind::Pace],
        "hops in propagation order"
    );
    let value = hops[3].value;
    assert!(hops.iter().all(|h| h.value == value), "one value links the chain");
    assert_eq!(hops[0].node, hops[1].node, "deposit and return at the queue");
    assert_eq!(hops[0].peer, snk_node, "deposit credited to the sink");
    assert_eq!(hops[1].peer, src_node, "return handed to the source");
    assert_eq!(hops[2].node, src_node, "fold on the source thread");
    assert_eq!(hops[3].node, src_node, "pace on the source thread");

    // The journal — the durable mirror of the same chain — must carry all
    // three hop legs plus the pace decision, with the same topology.
    let snap = telemetry.journal.snapshot();
    let hop = |leg: HopLeg| {
        snap.records.iter().find_map(|r| match r.kind {
            JournalKind::Hop { leg: l, peer, value } if l == leg => Some((r.node, peer, value)),
            _ => None,
        })
    };
    let (dep_node, dep_peer, _) = hop(HopLeg::Deposit).expect("deposit leg journaled");
    assert_eq!(dep_peer, snk_node, "journal deposit credited to the sink");
    let (ret_node, ret_peer, _) = hop(HopLeg::Return).expect("return leg journaled");
    assert_eq!(ret_node, dep_node, "journal return at the same queue node");
    assert_eq!(ret_peer, src_node, "journal return handed to the source");
    let (fold_node, fold_peer, _) = hop(HopLeg::Fold).expect("fold leg journaled");
    assert_eq!(fold_node, src_node, "journal fold on the source thread");
    assert_eq!(fold_peer, dep_node, "journal fold names the queue");
    assert!(
        snap.records.iter().any(|r| {
            r.node == src_node && matches!(r.kind, JournalKind::Pace { .. })
        }),
        "pace decision journaled on the source thread"
    );
}
