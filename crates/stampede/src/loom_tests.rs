//! Model-checked concurrency tests for the runtime's blocking protocols.
//!
//! These only compile under `RUSTFLAGS="--cfg loom"`; run them with
//!
//! ```text
//! RUSTFLAGS="--cfg loom" cargo test -p stampede --lib loom_
//! ```
//!
//! Every `Mutex`/`Condvar`/atomic these tests touch routes through
//! [`crate::sync`], so the vendored loom scheduler explores all bounded
//! interleavings (and all `notify_one` victim choices). A lost wakeup — a
//! notify that fires in the window between a waiter's predicate check and
//! its park — shows up as a model-checker deadlock, deterministically,
//! instead of a once-a-month CI hang.
//!
//! What is covered and why:
//!
//! * **Split condvars** ([`Channel`] keeps separate `cons`/`prod` wait
//!   sets): a put must never need to wake producers and a release must
//!   never need to wake consumers, or the split loses wakeups.
//! * **Watermark purge vs. a blocked get**: `release` advances the purge
//!   watermark while a consumer is parked inside `get_latest`; the put
//!   that satisfies the get races the purge for the state lock.
//! * **Queue single-condvar `notify_one`**: the model picks every possible
//!   victim, so a wrong-victim wakeup (producer woken instead of the
//!   consumer) would deadlock here.
//! * **[`NetworkSim`] stop/drain**: `stop()` must join the worker, so after
//!   it returns no delivery closure can run.
//! * **[`Shutdown`] set vs. timed sleep**: the timeout path and the
//!   notified path are both explored; `set()` must win in every
//!   interleaving.
//! * **Lock-free queue** ([`crate::lfqueue::LfQueue`], DESIGN.md §14):
//!   slot-claim sequence numbers across a ring wrap-around, the seqlock's
//!   torn-read retry/fallback, close racing a capacity-blocked put, and
//!   the epoch-parking handoff between a parked consumer and a completing
//!   put — each would deadlock (lost wakeup) or assert (torn/duplicated
//!   item) under a broken ordering.

use crate::channel::Channel;
use crate::queue::Queue;
use crate::shutdown::Shutdown;
use crate::task::TaskCtx;
use aru_core::{AruConfig, NodeId};
use aru_gc::{DgcResult, GcMode};
use aru_metrics::{IterKey, SharedTrace};
use crate::sync::RwLock;
use loom::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use vtime::{ManualClock, Micros, Timestamp};

fn test_ctx(trace: &SharedTrace, shutdown: &Shutdown) -> TaskCtx {
    TaskCtx::new(
        NodeId(0),
        "loom".into(),
        1,
        false,
        &AruConfig::aru_min(),
        Arc::new(ManualClock::new()),
        trace.clone(),
        shutdown.clone(),
        Arc::new(RwLock::new(DgcResult::default())),
    )
}

fn test_lfqueue(capacity: usize, trace: &SharedTrace) -> Arc<crate::lfqueue::LfQueue<Vec<u8>>> {
    let q = Arc::new(crate::lfqueue::LfQueue::new(
        NodeId(1),
        "lfq".into(),
        &AruConfig::aru_min(),
        capacity,
        trace.clone(),
    ));
    crate::channel::BufferAdmin::configure_consumers(&*q, 1);
    q
}

fn test_channel(capacity: Option<usize>, trace: &SharedTrace) -> Arc<Channel<Vec<u8>>> {
    let ch = Arc::new(Channel::new(
        NodeId(1),
        "ch".into(),
        &AruConfig::aru_min(),
        GcMode::Ref,
        capacity,
        Arc::new(ManualClock::new()),
        trace.clone(),
    ));
    ch.configure_consumers(1);
    ch
}

/// Split-condvar wakeup protocol on a capacity-1 channel: the producer's
/// second `put_blocking` parks on `prod` until the consumer's `release`
/// purges the first item; the consumer's second `get_latest` parks on
/// `cons` until the second put lands. Any interleaving that loses either
/// wakeup deadlocks the model.
#[test]
fn loom_bounded_channel_handoff_has_no_lost_wakeup() {
    loom::model(|| {
        let trace = SharedTrace::new();
        let shutdown = Shutdown::new();
        let ch = test_channel(Some(1), &trace);

        let producer = {
            let ch = Arc::clone(&ch);
            let mut ctx = test_ctx(&trace, &shutdown);
            loom::thread::spawn(move || {
                ch.put_blocking(&mut ctx, Timestamp(0), vec![0u8]).unwrap();
                ch.put_blocking(&mut ctx, Timestamp(1), vec![1u8]).unwrap();
            })
        };

        let mut ctx = test_ctx(&trace, &shutdown);
        let first = ch.get_latest(0, &mut ctx, Timestamp::ZERO).unwrap();
        ch.release(0, first.ts);
        let second = ch.get_latest(0, &mut ctx, first.ts.next()).unwrap();
        assert_eq!(second.ts, Timestamp(1));
        assert_eq!(*second.value, vec![1u8]);

        producer.join().unwrap();
    });
}

/// Satellite (d): a put and a watermark purge race a blocked get. The
/// consumer parks waiting for ts 1 while one thread inserts ts 1 and
/// another releases ts 0 (advancing `purged_before` and reclaiming). The
/// get must wake and return ts 1 in every interleaving — a purge that
/// swallowed the put's notify, or a put whose notify fired before the
/// consumer parked without leaving the item visible, would deadlock.
#[test]
fn loom_put_and_purge_racing_a_blocked_get() {
    loom::model(|| {
        let trace = SharedTrace::new();
        let shutdown = Shutdown::new();
        let ch = test_channel(None, &trace);
        let p = IterKey::new(NodeId(0), 0);

        ch.put(Timestamp(0), vec![0u8], p).unwrap();

        let putter = {
            let ch = Arc::clone(&ch);
            loom::thread::spawn(move || {
                ch.put(Timestamp(1), vec![1u8], p).unwrap();
            })
        };
        let purger = {
            let ch = Arc::clone(&ch);
            loom::thread::spawn(move || {
                ch.release(0, Timestamp(0));
            })
        };

        let mut ctx = test_ctx(&trace, &shutdown);
        let got = ch.get_latest(0, &mut ctx, Timestamp(1)).unwrap();
        assert_eq!(got.ts, Timestamp(1));

        putter.join().unwrap();
        purger.join().unwrap();
    });
}

/// A consumer parked in `get_latest` must be woken by `close()` with
/// `Err(Closed)` in every interleaving, including close() landing before
/// the consumer first takes the lock.
#[test]
fn loom_close_wakes_blocked_consumer() {
    loom::model(|| {
        let trace = SharedTrace::new();
        let shutdown = Shutdown::new();
        let ch = test_channel(None, &trace);

        let closer = {
            let ch = Arc::clone(&ch);
            loom::thread::spawn(move || ch.close())
        };

        let mut ctx = test_ctx(&trace, &shutdown);
        let got = ch.get_latest(0, &mut ctx, Timestamp::ZERO);
        assert!(got.is_err(), "close must unblock the consumer");

        closer.join().unwrap();
    });
}

/// Queue handoff through a single condvar with `notify_one`: the model
/// enumerates every victim choice, so this deadlocks if the queue ever
/// depends on notify_one hitting a specific waiter.
#[test]
fn loom_queue_handoff_has_no_lost_wakeup() {
    loom::model(|| {
        let trace = SharedTrace::new();
        let shutdown = Shutdown::new();
        let q = Arc::new(Queue::new(
            NodeId(1),
            "q".into(),
            &AruConfig::aru_min(),
            Arc::new(ManualClock::new()),
            trace.clone(),
        ));
        q.configure_consumers(1);
        let p = IterKey::new(NodeId(0), 0);

        let producer = {
            let q = Arc::clone(&q);
            loom::thread::spawn(move || {
                q.put(Timestamp(7), vec![7u8], p).unwrap();
            })
        };

        let mut ctx = test_ctx(&trace, &shutdown);
        let got = q.get(0, &mut ctx).unwrap();
        assert_eq!(got.ts, Timestamp(7));

        producer.join().unwrap();
    });
}

/// NetworkSim stop/drain ordering: `stop()` joins the worker, so once it
/// returns the delivery count is final — no closure can fire afterwards —
/// and the pending queue is empty. The scheduler explores stop() landing
/// before the worker pops the delivery (dropped, count 0) and after
/// (delivered, count 1); both are legal, but a *later* increment is not.
#[test]
fn loom_network_sim_stop_drains_then_joins() {
    loom::model(|| {
        let net = crate::net::NetworkSim::start();
        let fired = Arc::new(AtomicUsize::new(0));
        let f = Arc::clone(&fired);
        net.schedule(
            Micros::ZERO,
            Box::new(move || {
                f.fetch_add(1, Ordering::SeqCst);
            }),
        );
        net.stop();
        let final_count = fired.load(Ordering::SeqCst);
        assert!(final_count <= 1);
        assert_eq!(net.in_flight(), 0);
        // The worker is joined: nothing can change the count anymore, and a
        // second stop (and the eventual Drop) must not hang.
        net.stop();
        assert_eq!(fired.load(Ordering::SeqCst), final_count);
    });
}

/// A fitting `put_batch` is atomic: `get_batch` holds the state lock for
/// its whole drain, so in every interleaving it sees either none of the
/// batch (and stays parked) or all of it — never a prefix.
#[test]
fn loom_put_batch_is_all_or_nothing_for_get_batch() {
    loom::model(|| {
        let trace = SharedTrace::new();
        let shutdown = Shutdown::new();
        let ch = test_channel(None, &trace);
        let p = IterKey::new(NodeId(0), 0);

        let producer = {
            let ch = Arc::clone(&ch);
            loom::thread::spawn(move || {
                ch.put_batch(p, vec![(Timestamp(0), vec![0u8]), (Timestamp(1), vec![1u8])])
                    .unwrap();
            })
        };

        let mut ctx = test_ctx(&trace, &shutdown);
        let batch = ch.get_batch(0, &mut ctx, Timestamp::ZERO, 8).unwrap();
        assert_eq!(
            batch.iter().map(|it| it.ts).collect::<Vec<_>>(),
            vec![Timestamp(0), Timestamp(1)],
            "a visible batch must be visible whole"
        );

        producer.join().unwrap();
    });
}

/// Satellite (d): `put_batch_blocking` on a full capacity-2 channel races
/// a blocked `get_latest` and a watermark purge. The batch takes the slow
/// path — each item waits for the purge to open capacity (a `prod`
/// wakeup), and each insert must wake the parked consumer (a `cons`
/// wakeup). A lost wakeup on either condvar, in any interleaving of the
/// three threads, deadlocks the model.
#[test]
fn loom_put_batch_races_blocked_get_and_purge() {
    loom::model(|| {
        let trace = SharedTrace::new();
        let shutdown = Shutdown::new();
        let ch = test_channel(Some(2), &trace);
        let p = IterKey::new(NodeId(0), 0);

        ch.put(Timestamp(0), vec![0u8], p).unwrap();
        ch.put(Timestamp(1), vec![1u8], p).unwrap();

        let producer = {
            let ch = Arc::clone(&ch);
            let mut ctx = test_ctx(&trace, &shutdown);
            loom::thread::spawn(move || {
                ch.put_batch_blocking(
                    &mut ctx,
                    vec![(Timestamp(2), vec![2u8]), (Timestamp(3), vec![3u8])],
                )
                .unwrap();
            })
        };
        let purger = {
            let ch = Arc::clone(&ch);
            loom::thread::spawn(move || {
                ch.release(0, Timestamp(0));
                ch.release(0, Timestamp(1));
            })
        };

        let mut ctx = test_ctx(&trace, &shutdown);
        let got = ch.get_latest(0, &mut ctx, Timestamp(2)).unwrap();
        assert!(got.ts >= Timestamp(2));

        producer.join().unwrap();
        purger.join().unwrap();
        assert_eq!(ch.len(), 2, "both batch items landed after the purge");
    });
}

/// `close()` during a capacity-blocked `put_batch_blocking` must return
/// `Err(Closed)` in every interleaving — whether the close lands before
/// the batch takes the lock, or while it is parked waiting for capacity
/// that will never come.
#[test]
fn loom_close_mid_batch_returns_closed() {
    loom::model(|| {
        let trace = SharedTrace::new();
        let shutdown = Shutdown::new();
        let ch = test_channel(Some(1), &trace);
        let p = IterKey::new(NodeId(0), 0);

        ch.put(Timestamp(0), vec![0u8], p).unwrap();

        let producer = {
            let ch = Arc::clone(&ch);
            let mut ctx = test_ctx(&trace, &shutdown);
            loom::thread::spawn(move || {
                ch.put_batch_blocking(
                    &mut ctx,
                    vec![(Timestamp(1), vec![1u8]), (Timestamp(2), vec![2u8])],
                )
            })
        };

        ch.close();
        let res = producer.join().unwrap();
        assert!(
            matches!(res, Err(crate::error::StampedeError::Closed)),
            "blocked batch must observe the close"
        );
    });
}

/// Slot-claim protocol across a ring wrap-around: capacity 2, three items,
/// so slot 0 is reused with a bumped sequence number while the producer
/// parks on full and the consumer parks on empty. A slot whose sequence
/// lags its position would hand out a duplicate or drop an item (assert),
/// and a lost epoch-parking wakeup on either side deadlocks the model.
#[test]
fn loom_lfqueue_slot_claim_survives_wraparound() {
    loom::model(|| {
        let trace = SharedTrace::new();
        let shutdown = Shutdown::new();
        let q = test_lfqueue(2, &trace);
        let p = IterKey::new(NodeId(0), 0);

        let producer = {
            let q = Arc::clone(&q);
            loom::thread::spawn(move || {
                for i in 0..3u64 {
                    q.put(Timestamp(i), vec![i as u8], p).unwrap();
                }
            })
        };

        let mut ctx = test_ctx(&trace, &shutdown);
        for i in 0..3u64 {
            let got = q.get(0, &mut ctx).unwrap();
            assert_eq!(got.ts, Timestamp(i), "FIFO must hold across the wrap");
            assert_eq!(*got.value, vec![i as u8]);
        }

        producer.join().unwrap();
        assert!(q.is_empty());
        assert_eq!(q.live_bytes(), 0, "byte accounting drains to zero");
    });
}

/// Seqlock torn-read protection: a reader racing two writes must either
/// return a published (generation, payload) pair or give up (`None`, the
/// fall-back-to-lock signal after bounded retries) — never a mix of the
/// two writes. After the writer quiesces, a read must succeed.
#[test]
fn loom_seqlock_readers_never_observe_torn_pairs() {
    loom::model(|| {
        let c = Arc::new(crate::seqlock::SeqCell::new(0, 0));
        let writer = {
            let c = Arc::clone(&c);
            // A single writer thread satisfies the cell's external-
            // serialization invariant (normally the control mutex).
            loom::thread::spawn(move || {
                c.write(1, 2);
                c.write(2, 4);
            })
        };
        if let Some((g, v)) = c.try_read() {
            assert_eq!(v, g * 2, "torn seqlock read: ({g}, {v})");
        }
        writer.join().unwrap();
        assert_eq!(
            c.try_read(),
            Some((2, 4)),
            "a quiescent cell must serve the bounded-optimistic read"
        );
    });
}

/// `close()` racing a put that parked on a full ring: the ring never
/// opens (nothing pops), so the put must observe the close and return
/// `Err(Closed)` in every interleaving — close-before-park, close-while-
/// parked (the wakeup must not be lost), and close-between-retries.
#[test]
fn loom_lfqueue_close_races_blocked_put() {
    loom::model(|| {
        let trace = SharedTrace::new();
        let q = test_lfqueue(2, &trace);
        let p = IterKey::new(NodeId(0), 0);
        q.put(Timestamp(0), vec![0u8], p).unwrap();
        q.put(Timestamp(1), vec![1u8], p).unwrap();

        let producer = {
            let q = Arc::clone(&q);
            loom::thread::spawn(move || q.put(Timestamp(2), vec![2u8], p))
        };
        let closer = {
            let q = Arc::clone(&q);
            loom::thread::spawn(move || q.close())
        };

        let res = producer.join().unwrap();
        closer.join().unwrap();
        assert!(
            matches!(res, Err(crate::error::StampedeError::Closed)),
            "a put blocked on a full ring must observe the close"
        );
        assert_eq!(q.len(), 2, "queued items stay drainable after close");
    });
}

/// Epoch-parking handoff: a consumer that finds the ring empty loads the
/// push epoch, re-checks it under the park lock, and sleeps only if no
/// put completed in between; the put bumps the epoch *before* checking
/// the waiter counter. The model explores the put landing before the
/// epoch load, between load and park, and after the park — a lost wakeup
/// in any of them deadlocks.
#[test]
fn loom_lfqueue_waiter_handoff_has_no_lost_wakeup() {
    loom::model(|| {
        let trace = SharedTrace::new();
        let shutdown = Shutdown::new();
        let q = test_lfqueue(2, &trace);
        let p = IterKey::new(NodeId(0), 0);

        let producer = {
            let q = Arc::clone(&q);
            loom::thread::spawn(move || {
                q.put(Timestamp(9), vec![9u8], p).unwrap();
            })
        };

        let mut ctx = test_ctx(&trace, &shutdown);
        let got = q.get(0, &mut ctx).unwrap();
        assert_eq!(got.ts, Timestamp(9));

        producer.join().unwrap();
    });
}

/// The task-loop wake path under shutdown: a consumer blocks in `get`
/// (empty ring), a producer completes one `put` and immediately
/// `close()`s. In every interleaving — close landing before the consumer
/// parks, between its epoch load and park, or while it sleeps — the
/// consumer must receive the item (never `Err(Closed)` with the item
/// still drainable) and only then observe the close. Before the
/// closed-check required `ring.is_empty()`, the schedule "failed
/// try_pop → put completes → close lands → closed-check" stranded the
/// item and this test failed.
#[test]
fn loom_lfqueue_close_never_strands_drainable_item() {
    loom::model(|| {
        let trace = SharedTrace::new();
        let shutdown = Shutdown::new();
        let q = test_lfqueue(2, &trace);
        let p = IterKey::new(NodeId(0), 0);

        let producer = {
            let q = Arc::clone(&q);
            loom::thread::spawn(move || {
                q.put(Timestamp(3), vec![3u8], p).unwrap();
                q.close();
            })
        };

        let mut ctx = test_ctx(&trace, &shutdown);
        let got = q.get(0, &mut ctx).expect("pre-close item stays drainable");
        assert_eq!(got.ts, Timestamp(3));
        assert!(
            matches!(q.get(0, &mut ctx), Err(crate::error::StampedeError::Closed)),
            "drained + closed must report Closed"
        );

        producer.join().unwrap();
    });
}

/// The `(len, live_bytes)` read-side mirror publishes as one seqlock
/// pair: a sampler racing two puts of 7-byte items must always see
/// `bytes == len * 7` (or hit the bounded-retry lock fallback, which is
/// coherent by construction). With the pair as two independent atomics
/// this assert fails on the schedule "store len=2 → sample → store
/// bytes=14".
#[test]
fn loom_channel_obs_pair_never_tears() {
    loom::model(|| {
        let trace = SharedTrace::new();
        let ch = test_channel(None, &trace);
        let p = IterKey::new(NodeId(0), 0);

        let producer = {
            let ch = Arc::clone(&ch);
            loom::thread::spawn(move || {
                ch.put(Timestamp(0), vec![0u8; 7], p).unwrap();
                ch.put(Timestamp(1), vec![1u8; 7], p).unwrap();
            })
        };

        let (len, bytes) = ch.occupancy();
        assert_eq!(
            bytes,
            len as u64 * 7,
            "torn occupancy pair: len {len}, bytes {bytes}"
        );

        producer.join().unwrap();
        assert_eq!(ch.occupancy(), (2, 14));
    });
}

/// Shutdown set vs. a concurrent timed sleep: whether the sleeper parks
/// before or after the flag flips — and even if the model fires the
/// timeout spuriously — the sleeper must observe the shutdown.
#[test]
fn loom_shutdown_set_always_wakes_sleeper() {
    loom::model(|| {
        let s = Shutdown::new();
        let s2 = s.clone();
        let sleeper =
            loom::thread::spawn(move || s2.sleep(Micros::from_secs(3600)));
        s.set();
        assert!(
            sleeper.join().unwrap(),
            "sleeper missed a shutdown that was set"
        );
        assert!(s.is_set());
    });
}
