//! Timestamped FIFO queues with destructive gets.
//!
//! Stampede queues complement channels: items are delivered in FIFO order
//! and a `get` removes the item (each item is consumed by exactly one
//! consumer). ARU piggybacking is identical to channels: consumers deposit
//! their summary-STP on `get`, producers receive the queue's summary as the
//! return of `put`.
//!
//! Under DGC a queue can also drop queued items whose timestamps are
//! provably dead downstream (`apply_dead_before`), which is the queue
//! analogue of channel reclamation.

use crate::channel::BufferAdmin;
use crate::error::StampedeError;
use crate::item::{ItemData, StampedItem};
use crate::seqlock::{decode_summary, encode_summary, SeqCell};
use crate::task::TaskCtx;
use crate::tele::BufTele;
use aru_core::{AruConfig, AruController, NodeId, NodeKind};
use aru_gc::ConsumerMarks;
use aru_metrics::{ItemId, IterKey, LocalTrace, SharedTrace};
use crate::sync::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::Arc;
use vtime::{Clock, SimTime, Timestamp};

struct QStored<T> {
    ts: Timestamp,
    value: Arc<T>,
    id: ItemId,
    bytes: u64,
}

struct QueueState<T> {
    items: VecDeque<QStored<T>>,
    /// Buffered trace writer, `&mut`-accessed under the state mutex every
    /// queue op already holds — recording is a plain `Vec::push`.
    trace: LocalTrace,
    marks: ConsumerMarks,
    aru: AruController,
    closed: bool,
    live_bytes: u64,
    /// Live-telemetry accumulator (see `crate::tele::BufTele`).
    tele: BufTele,
    /// Last summary published to the lock-free cell (encoded) and the
    /// cell's generation counter — the change gate for republishing.
    published_summary: u64,
    summary_gen: u64,
}

/// A FIFO buffer of timestamped items.
pub struct Queue<T: ItemData> {
    node: NodeId,
    name: String,
    clock: Arc<dyn Clock>,
    state: Mutex<QueueState<T>>,
    /// Consumers blocked in `get`. Queues are unbounded so producers never
    /// wait — one wait set suffices, and `put` wakes exactly one getter
    /// (`notify_one`): an item is consumed destructively by one consumer,
    /// so waking more would just stampede them back to sleep.
    cond: Condvar,
    /// Lock-free read-side observables (DESIGN.md §14), mirrored at the
    /// end of every mutating locked section. `(len, live_bytes)` live in
    /// one seqlock cell so samplers always see a coherent pair — two
    /// independent atomics let a reader pair a new `len` with stale
    /// `bytes` (or vice versa). Reads are lock-free unless the bounded
    /// retry window keeps colliding with writers (then they fall back to
    /// the state lock, like `summary`).
    obs_cell: SeqCell,
    summary_cell: SeqCell,
}

impl<T: ItemData> Queue<T> {
    pub(crate) fn new(
        node: NodeId,
        name: String,
        config: &AruConfig,
        clock: Arc<dyn Clock>,
        trace: SharedTrace,
    ) -> Self {
        let tele = BufTele::new(trace.telemetry(), "queue", &name, node);
        Queue {
            node,
            name,
            clock,
            state: Mutex::new(QueueState {
                items: VecDeque::new(),
                trace: trace.local(),
                marks: ConsumerMarks::new(0),
                aru: AruController::new(NodeKind::Queue, 0, false, config),
                closed: false,
                live_bytes: 0,
                tele,
                published_summary: 0,
                summary_gen: 0,
            }),
            cond: Condvar::new(),
            obs_cell: SeqCell::new(0, 0),
            summary_cell: SeqCell::new(0, 0),
        }
    }

    pub(crate) fn configure_consumers(&self, n: usize) {
        let mut st = self.state.lock();
        st.marks = ConsumerMarks::new(n);
        st.aru.ensure_outputs(n);
        self.republish_summary_locked(&mut st);
        self.publish_obs_locked(&st);
    }

    /// Mirror the occupancy observables into the lock-free cell as one
    /// coherent `(len, live_bytes)` pair. Called at the end of every
    /// locked section that moved items (the seqlock writer invariant:
    /// writers are serialized by the state mutex).
    fn publish_obs_locked(&self, st: &QueueState<T>) {
        self.obs_cell.write(st.items.len() as u64, st.live_bytes);
    }

    /// Republish the summary seqlock cell when the controller's
    /// compression changed (callers hold the state mutex — the seqlock
    /// writer invariant).
    fn republish_summary_locked(&self, st: &mut QueueState<T>) {
        let enc = encode_summary(st.aru.summary());
        if enc != st.published_summary {
            st.published_summary = enc;
            st.summary_gen += 1;
            self.summary_cell.write(st.summary_gen, enc);
        }
    }

    /// Shared deposit path for every get variant: fold the consumer's
    /// summary-STP, record the hop, republish the lock-free summary cell.
    fn deposit_locked(
        &self,
        st: &mut QueueState<T>,
        chan_out_index: usize,
        ctx: &TaskCtx,
        now: vtime::SimTime,
    ) {
        if let Some(summary) = ctx.summary() {
            st.aru.receive_feedback(chan_out_index, summary);
            st.tele.on_deposit(ctx.node(), summary.period(), || now);
            self.republish_summary_locked(st);
        }
    }

    #[must_use]
    pub fn node(&self) -> NodeId {
        self.node
    }

    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Enqueue; returns the queue's summary-STP as backward feedback.
    pub fn put(
        &self,
        ts: Timestamp,
        value: T,
        producer: IterKey,
    ) -> Result<Option<aru_core::Stp>, StampedeError> {
        let now = self.clock.now();
        let mut st = self.state.lock();
        if st.closed {
            return Err(StampedeError::Closed);
        }
        let bytes = value.size_bytes();
        let id = st.trace.alloc(now, self.node, ts, bytes, producer);
        st.items.push_back(QStored {
            ts,
            value: Arc::new(value),
            id,
            bytes,
        });
        st.live_bytes += bytes;
        let len = st.items.len();
        st.tele.on_put(1, len);
        self.publish_obs_locked(&st);
        let summary = st.aru.summary();
        if let Some(s) = summary {
            st.tele.on_return(producer.node, s.period(), || now);
        }
        drop(st);
        self.cond.notify_one();
        Ok(summary)
    }

    /// Batch enqueue: one clock read, one lock hold, one batched trace
    /// append, one summary return, one wakeup. An empty batch is a no-op
    /// returning `Ok(None)`.
    pub fn put_batch(
        &self,
        producer: IterKey,
        batch: impl IntoIterator<Item = (Timestamp, T)>,
    ) -> Result<Option<aru_core::Stp>, StampedeError> {
        // Box payloads outside the lock.
        let prepared: Vec<(Timestamp, Arc<T>, u64)> = batch
            .into_iter()
            .map(|(ts, value)| {
                let bytes = value.size_bytes();
                (ts, Arc::new(value), bytes)
            })
            .collect();
        if prepared.is_empty() {
            return Ok(None);
        }
        let n = prepared.len();
        let now = self.clock.now();
        let mut st = self.state.lock();
        if st.closed {
            return Err(StampedeError::Closed);
        }
        let mut ids = Vec::with_capacity(n);
        st.trace.put_n(
            now,
            self.node,
            producer,
            prepared.iter().map(|&(ts, _, bytes)| (ts, bytes)),
            |id| ids.push(id),
        );
        for ((ts, value, bytes), id) in prepared.into_iter().zip(ids) {
            st.items.push_back(QStored {
                ts,
                value,
                id,
                bytes,
            });
            st.live_bytes += bytes;
        }
        let len = st.items.len();
        st.tele.on_put(n as u64, len);
        self.publish_obs_locked(&st);
        let summary = st.aru.summary();
        if let Some(s) = summary {
            st.tele.on_return(producer.node, s.period(), || now);
        }
        drop(st);
        // Destructive FIFO: one item satisfies one getter, so wake as many
        // getters as there are new items (all of them past one).
        if n == 1 {
            self.cond.notify_one();
        } else {
            self.cond.notify_all();
        }
        Ok(summary)
    }

    /// Drain-style batch dequeue: block while empty, then pop up to `max`
    /// items in FIFO order under one lock hold, with one clock read, one
    /// summary deposit, and batched trace appends.
    pub fn get_batch(
        &self,
        chan_out_index: usize,
        ctx: &mut TaskCtx,
        max: usize,
    ) -> Result<Vec<StampedItem<T>>, StampedeError> {
        assert!(max > 0, "batch must be non-empty");
        let deadline = crate::channel::op_deadline(ctx);
        let mut st = self.state.lock();
        let mut blocked = false;
        loop {
            if !st.items.is_empty() {
                if blocked {
                    ctx.block_end(self.clock.now());
                }
                let now = self.clock.now();
                self.deposit_locked(&mut st, chan_out_index, ctx, now);
                let take = max.min(st.items.len());
                let mut batch = Vec::with_capacity(take);
                let mut ids = Vec::with_capacity(take);
                for _ in 0..take {
                    let stored = st.items.pop_front().expect("len checked");
                    st.live_bytes -= stored.bytes;
                    ids.push(stored.id);
                    batch.push(StampedItem {
                        ts: stored.ts,
                        value: stored.value,
                    });
                }
                // `advance` is max-only, so one advance to the newest
                // popped timestamp equals advancing per item (arrival
                // order need not be timestamp order).
                let newest = batch.iter().map(|s| s.ts).max().expect("take >= 1");
                st.marks.advance(chan_out_index, newest);
                let len = st.items.len();
                st.tele.on_get(take as u64, len);
                st.trace.get_free_n(now, ctx.iter_key(), ids);
                self.publish_obs_locked(&st);
                return Ok(batch);
            }
            if st.closed {
                if blocked {
                    ctx.block_end(self.clock.now());
                }
                return Err(StampedeError::Closed);
            }
            if !blocked {
                blocked = true;
                ctx.block_begin(self.clock.now());
            }
            match deadline {
                None => self.cond.wait(&mut st),
                Some(dl) => {
                    let now = std::time::Instant::now();
                    if now >= dl {
                        ctx.block_end(self.clock.now());
                        st.tele.on_timeout();
                        st.trace.op_timeout(self.clock.now(), ctx.node());
                        return Err(StampedeError::Timeout);
                    }
                    self.cond.wait_for(&mut st, dl - now);
                }
            }
        }
    }

    /// Dequeue the oldest item, blocking while empty (up to the task's op
    /// timeout, when one is configured).
    pub fn get(
        &self,
        chan_out_index: usize,
        ctx: &mut TaskCtx,
    ) -> Result<StampedItem<T>, StampedeError> {
        let deadline = crate::channel::op_deadline(ctx);
        let mut st = self.state.lock();
        let mut blocked = false;
        loop {
            if let Some(stored) = st.items.pop_front() {
                if blocked {
                    ctx.block_end(self.clock.now());
                }
                st.live_bytes -= stored.bytes;
                st.marks.advance(chan_out_index, stored.ts);
                let now = self.clock.now();
                self.deposit_locked(&mut st, chan_out_index, ctx, now);
                let len = st.items.len();
                st.tele.on_get(1, len);
                st.trace.get(now, stored.id, ctx.iter_key());
                st.trace.free(now, stored.id);
                self.publish_obs_locked(&st);
                return Ok(StampedItem {
                    ts: stored.ts,
                    value: stored.value,
                });
            }
            if st.closed {
                if blocked {
                    ctx.block_end(self.clock.now());
                }
                return Err(StampedeError::Closed);
            }
            if !blocked {
                blocked = true;
                ctx.block_begin(self.clock.now());
            }
            match deadline {
                None => self.cond.wait(&mut st),
                Some(dl) => {
                    let now = std::time::Instant::now();
                    if now >= dl {
                        ctx.block_end(self.clock.now());
                        st.tele.on_timeout();
                        st.trace.op_timeout(self.clock.now(), ctx.node());
                        return Err(StampedeError::Timeout);
                    }
                    self.cond.wait_for(&mut st, dl - now);
                }
            }
        }
    }

    /// Non-blocking dequeue.
    pub fn try_get(
        &self,
        chan_out_index: usize,
        ctx: &mut TaskCtx,
    ) -> Result<Option<StampedItem<T>>, StampedeError> {
        let mut st = self.state.lock();
        match st.items.pop_front() {
            Some(stored) => {
                st.live_bytes -= stored.bytes;
                st.marks.advance(chan_out_index, stored.ts);
                let now = self.clock.now();
                self.deposit_locked(&mut st, chan_out_index, ctx, now);
                let len = st.items.len();
                st.tele.on_get(1, len);
                st.trace.get(now, stored.id, ctx.iter_key());
                st.trace.free(now, stored.id);
                self.publish_obs_locked(&st);
                Ok(Some(StampedItem {
                    ts: stored.ts,
                    value: stored.value,
                }))
            }
            None if st.closed => Err(StampedeError::Closed),
            None => Ok(None),
        }
    }

    /// Items currently queued (lock-free mirror, exact at op boundaries).
    #[must_use]
    pub fn len(&self) -> usize {
        self.occupancy().0
    }

    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes currently held (lock-free mirror, exact at op boundaries).
    #[must_use]
    pub fn live_bytes(&self) -> u64 {
        self.occupancy().1
    }

    /// A coherent `(len, live_bytes)` snapshot: both values come from the
    /// same op boundary. Lock-free unless the bounded seqlock retry keeps
    /// colliding with in-flight ops.
    #[must_use]
    pub fn occupancy(&self) -> (usize, u64) {
        match self.obs_cell.try_read() {
            Some((len, bytes)) => (len as usize, bytes),
            None => {
                let st = self.state.lock();
                (st.items.len(), st.live_bytes)
            }
        }
    }

    /// The queue's current summary-STP (the value a put would return),
    /// served from the seqlock cell — lock-free unless the bounded retry
    /// window keeps colliding with in-flight deposits.
    #[must_use]
    pub fn summary(&self) -> Option<aru_core::Stp> {
        match self.summary_cell.try_read() {
            Some((_gen, enc)) => decode_summary(enc),
            None => self.state.lock().aru.summary(),
        }
    }

    /// Snapshot the consumer marks (for DGC).
    #[must_use]
    pub fn marks_snapshot(&self) -> ConsumerMarks {
        self.state.lock().marks.clone()
    }

    /// Drop queued items with `ts < bound` (their downstream outputs are
    /// provably dead).
    pub fn apply_dead_before(&self, bound: Timestamp) {
        if bound == Timestamp::ZERO {
            return;
        }
        let mut st = self.state.lock();
        // Common case: the DGC bound trails the consumption frontier and
        // nothing queued is dead — skip the rebuild entirely.
        if !st.items.iter().any(|s| s.ts < bound) {
            return;
        }
        let now = self.clock.now();
        let mut kept = VecDeque::with_capacity(st.items.len());
        let mut dropped = 0u64;
        while let Some(stored) = st.items.pop_front() {
            if stored.ts < bound {
                st.live_bytes -= stored.bytes;
                st.trace.free(now, stored.id);
                dropped += 1;
            } else {
                kept.push_back(stored);
            }
        }
        st.items = kept;
        st.tele.on_purged(dropped);
        self.publish_obs_locked(&st);
    }

    /// Close: wake blocked getters; free queued items.
    pub fn close(&self) {
        let mut st = self.state.lock();
        if st.closed {
            return;
        }
        st.closed = true;
        let now = self.clock.now();
        while let Some(stored) = st.items.pop_front() {
            st.trace.free(now, stored.id);
        }
        st.live_bytes = 0;
        self.publish_obs_locked(&st);
        drop(st);
        self.cond.notify_all();
    }
}

impl<T: ItemData> BufferAdmin for Queue<T> {
    fn node(&self) -> NodeId {
        Queue::node(self)
    }
    fn configure_consumers(&self, n: usize) {
        Queue::configure_consumers(self, n)
    }
    fn marks_snapshot(&self) -> ConsumerMarks {
        Queue::marks_snapshot(self)
    }
    fn apply_dead_before(&self, bound: Timestamp) {
        Queue::apply_dead_before(self, bound)
    }
    fn close(&self) {
        Queue::close(self)
    }
    fn live_bytes(&self) -> u64 {
        Queue::live_bytes(self)
    }
    fn flush_trace(&self) {
        self.state.lock().trace.flush();
    }
    fn publish_telemetry(&self, now: SimTime) {
        let mut st = self.state.lock();
        let len = st.items.len();
        let live = st.live_bytes;
        st.tele.publish(now, len, live);
    }
}

/// Producer endpoint bound directly to the mutex [`Queue`] (the
/// backend-agnostic endpoint the builder hands out is
/// [`crate::backend::QueueOutput`], which wraps this).
pub struct MutexQueueOutput<T: ItemData> {
    pub(crate) q: Arc<Queue<T>>,
    pub(crate) thread_out_index: usize,
}

impl<T: ItemData> MutexQueueOutput<T> {
    /// Enqueue an item, folding the queue's summary-STP back into the
    /// producing thread.
    pub fn put(&self, ctx: &mut TaskCtx, ts: Timestamp, value: T) -> Result<(), StampedeError> {
        let t0 = ctx.op_sample();
        let summary = self.q.put(ts, value, ctx.iter_key())?;
        if let Some(stp) = summary {
            ctx.receive_feedback_from(self.thread_out_index, stp, self.q.node());
        }
        if let Some(t0) = t0 {
            ctx.record_put_ns(t0);
        }
        Ok(())
    }

    /// Batch enqueue (see [`Queue::put_batch`]): whole batch in one buffer
    /// operation, one backward feedback fold.
    pub fn put_batch(
        &self,
        ctx: &mut TaskCtx,
        batch: impl IntoIterator<Item = (Timestamp, T)>,
    ) -> Result<(), StampedeError> {
        let t0 = ctx.op_sample();
        let summary = self.q.put_batch(ctx.iter_key(), batch)?;
        if let Some(stp) = summary {
            ctx.receive_feedback_from(self.thread_out_index, stp, self.q.node());
        }
        if let Some(t0) = t0 {
            ctx.record_put_ns(t0);
        }
        Ok(())
    }

    #[must_use]
    pub fn queue(&self) -> &Queue<T> {
        &self.q
    }

    /// A shared handle to the queue (for monitoring outside the task).
    #[must_use]
    pub fn queue_arc(&self) -> Arc<Queue<T>> {
        Arc::clone(&self.q)
    }
}

/// Consumer endpoint bound directly to the mutex [`Queue`] (wrapped by
/// [`crate::backend::QueueInput`]).
pub struct MutexQueueInput<T: ItemData> {
    pub(crate) q: Arc<Queue<T>>,
    pub(crate) chan_out_index: usize,
}

impl<T: ItemData> MutexQueueInput<T> {
    /// Blocking FIFO get.
    pub fn get(&mut self, ctx: &mut TaskCtx) -> Result<StampedItem<T>, StampedeError> {
        let t0 = ctx.op_sample();
        let item = self.q.get(self.chan_out_index, ctx)?;
        if let Some(t0) = t0 {
            ctx.record_get_ns(t0);
        }
        Ok(item)
    }

    /// Non-blocking FIFO get.
    pub fn try_get(&mut self, ctx: &mut TaskCtx) -> Result<Option<StampedItem<T>>, StampedeError> {
        self.q.try_get(self.chan_out_index, ctx)
    }

    /// Drain-style batch dequeue (see [`Queue::get_batch`]).
    pub fn get_batch(
        &mut self,
        ctx: &mut TaskCtx,
        max: usize,
    ) -> Result<Vec<StampedItem<T>>, StampedeError> {
        let t0 = ctx.op_sample();
        let batch = self.q.get_batch(self.chan_out_index, ctx, max)?;
        if let Some(t0) = t0 {
            ctx.record_get_ns(t0);
        }
        Ok(batch)
    }

    #[must_use]
    pub fn queue(&self) -> &Queue<T> {
        &self.q
    }
}
