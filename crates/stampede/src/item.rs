//! Items: the payloads that flow through channels and queues.

use std::sync::Arc;
use vtime::Timestamp;

/// Payload trait: anything stored in a buffer must report its size so the
/// measurement infrastructure can account memory the way the paper does
/// (bytes of application data held in channels).
pub trait ItemData: Send + Sync + 'static {
    /// Logical size of this item in bytes.
    fn size_bytes(&self) -> u64;
}

impl ItemData for Vec<u8> {
    fn size_bytes(&self) -> u64 {
        self.len() as u64
    }
}

impl ItemData for bytes::Bytes {
    fn size_bytes(&self) -> u64 {
        self.len() as u64
    }
}

impl ItemData for String {
    fn size_bytes(&self) -> u64 {
        self.len() as u64
    }
}

impl<T: ItemData> ItemData for Arc<T> {
    fn size_bytes(&self) -> u64 {
        (**self).size_bytes()
    }
}

/// A fixed-size record wrapper for small plain payloads (e.g. the tracker's
/// 68-byte detection records): the reported size is `size_of::<T>()`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Record<T>(pub T);

impl<T: Send + Sync + 'static> ItemData for Record<T> {
    fn size_bytes(&self) -> u64 {
        std::mem::size_of::<T>() as u64
    }
}

/// A retrieved item: the virtual timestamp plus a shared handle to the
/// payload (channels are multi-consumer, so gets hand out `Arc`s rather
/// than moving the value).
#[derive(Debug)]
pub struct StampedItem<T> {
    pub ts: Timestamp,
    pub value: Arc<T>,
}

impl<T> Clone for StampedItem<T> {
    fn clone(&self) -> Self {
        StampedItem {
            ts: self.ts,
            value: Arc::clone(&self.value),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes() {
        assert_eq!(vec![0u8; 10].size_bytes(), 10);
        assert_eq!("hello".to_string().size_bytes(), 5);
        assert_eq!(bytes::Bytes::from_static(b"abc").size_bytes(), 3);
        assert_eq!(Arc::new(vec![0u8; 7]).size_bytes(), 7);
        assert_eq!(Record([0u64; 4]).size_bytes(), 32);
    }

    #[test]
    fn stamped_item_clone_shares_payload() {
        let item = StampedItem {
            ts: Timestamp(3),
            value: Arc::new(vec![1u8, 2, 3]),
        };
        let c = item.clone();
        assert_eq!(c.ts, Timestamp(3));
        assert!(Arc::ptr_eq(&item.value, &c.value));
    }
}
