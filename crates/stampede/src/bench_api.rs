//! Construction helpers for benchmarks and integration tests.
//!
//! Public construction of channels, queues, and task contexts normally
//! goes through [`crate::builder::RuntimeBuilder`], which wires a whole
//! task graph. The hotpath bench binary and the batch-equivalence tests
//! need *bare* components — one channel, one context, no runtime — so this
//! module re-exposes the crate-private constructors. It is `#[doc(hidden)]`
//! and carries no stability promise; application code must keep using the
//! builder.

use crate::channel::{BufferAdmin, Channel, Input, Output};
use crate::item::ItemData;
use crate::lfqueue::{LfQueue, LfQueueInput, LfQueueOutput};
use crate::queue::{MutexQueueInput, MutexQueueOutput, Queue};
use crate::shutdown::Shutdown;
use crate::sync::RwLock;
use crate::task::TaskCtx;
use aru_core::{AruConfig, NodeId, Stp};
use aru_gc::{DgcResult, GcMode};
use aru_metrics::SharedTrace;
use std::sync::Arc;
use vtime::{Clock, Micros, Timestamp};

/// A standalone channel with `consumers` consumer slots configured.
// Mirrors `Channel::new`'s parameter list so benches read the same as runtime wiring.
#[allow(clippy::too_many_arguments)]
#[must_use]
pub fn channel<T: ItemData>(
    node: NodeId,
    name: &str,
    config: &AruConfig,
    gc_mode: GcMode,
    capacity: Option<usize>,
    clock: Arc<dyn Clock>,
    trace: SharedTrace,
    consumers: usize,
) -> Arc<Channel<T>> {
    let ch = Arc::new(Channel::new(
        node,
        name.to_string(),
        config,
        gc_mode,
        capacity,
        clock,
        trace,
    ));
    ch.configure_consumers(consumers);
    ch
}

/// A standalone queue with `consumers` consumer slots configured.
#[must_use]
pub fn queue<T: ItemData>(
    node: NodeId,
    name: &str,
    config: &AruConfig,
    clock: Arc<dyn Clock>,
    trace: SharedTrace,
    consumers: usize,
) -> Arc<Queue<T>> {
    let q = Arc::new(Queue::new(node, name.to_string(), config, clock, trace));
    q.configure_consumers(consumers);
    q
}

/// A standalone lock-free queue with `consumers` consumer slots
/// configured (DESIGN.md §14; capacity rounds up to a power of two).
#[must_use]
pub fn lfqueue<T: ItemData>(
    node: NodeId,
    name: &str,
    config: &AruConfig,
    capacity: usize,
    trace: SharedTrace,
    consumers: usize,
) -> Arc<LfQueue<T>> {
    let q = Arc::new(LfQueue::new(node, name.to_string(), config, capacity, trace));
    BufferAdmin::configure_consumers(&*q, consumers);
    q
}

/// A standalone task context (its own shutdown flag, empty DGC result).
#[must_use]
pub fn task_ctx(
    node: NodeId,
    name: &str,
    n_outputs: usize,
    is_source: bool,
    config: &AruConfig,
    clock: Arc<dyn Clock>,
    trace: SharedTrace,
) -> TaskCtx {
    TaskCtx::new(
        node,
        name.to_string(),
        n_outputs,
        is_source,
        config,
        clock,
        trace,
        Shutdown::new(),
        Arc::new(RwLock::new(DgcResult::default())),
    )
}

/// Producer endpoint for slot `thread_out_index` of the producing thread's
/// backward vector.
#[must_use]
pub fn output<T: ItemData>(ch: &Arc<Channel<T>>, thread_out_index: usize) -> Output<T> {
    Output {
        ch: Arc::clone(ch),
        thread_out_index,
    }
}

/// Consumer endpoint for the channel's consumer slot `chan_out_index`.
#[must_use]
pub fn input<T: ItemData>(ch: &Arc<Channel<T>>, chan_out_index: usize) -> Input<T> {
    Input {
        ch: Arc::clone(ch),
        chan_out_index,
        floor: Timestamp::ZERO,
    }
}

/// Producer endpoint for a mutex queue (the oracle side of the
/// differential suites; graph code gets the backend-agnostic
/// `backend::QueueOutput` from the builder instead).
#[must_use]
pub fn queue_output<T: ItemData>(
    q: &Arc<Queue<T>>,
    thread_out_index: usize,
) -> MutexQueueOutput<T> {
    MutexQueueOutput {
        q: Arc::clone(q),
        thread_out_index,
    }
}

/// Consumer endpoint for a mutex queue.
#[must_use]
pub fn queue_input<T: ItemData>(q: &Arc<Queue<T>>, chan_out_index: usize) -> MutexQueueInput<T> {
    MutexQueueInput {
        q: Arc::clone(q),
        chan_out_index,
    }
}

/// Producer endpoint for a lock-free queue.
#[must_use]
pub fn lfqueue_output<T: ItemData>(
    q: &Arc<LfQueue<T>>,
    thread_out_index: usize,
) -> LfQueueOutput<T> {
    LfQueueOutput::new(Arc::clone(q), thread_out_index)
}

/// Consumer endpoint for a lock-free queue.
#[must_use]
pub fn lfqueue_input<T: ItemData>(q: &Arc<LfQueue<T>>, chan_out_index: usize) -> LfQueueInput<T> {
    LfQueueInput::new(Arc::clone(q), chan_out_index)
}

/// Seed the context's summary-STP so subsequent gets exercise the feedback
/// deposit path (a fresh context has nothing to piggyback).
pub fn warm_summary(ctx: &mut TaskCtx, stp: Stp) {
    ctx.receive_feedback(0, stp);
}

/// Give the context a per-op timeout, as the supervised runtime does —
/// blocking ops then compute a wall-clock deadline on entry.
pub fn set_op_timeout(ctx: &mut TaskCtx, timeout: Micros) {
    ctx.set_op_timeout(Some(timeout));
}

/// Publish a channel's buffered trace events (tests snapshot after this).
pub fn flush_channel_trace<T: ItemData>(ch: &Channel<T>) {
    BufferAdmin::flush_trace(ch);
}

/// Publish a queue's buffered trace events.
pub fn flush_queue_trace<T: ItemData>(q: &Queue<T>) {
    BufferAdmin::flush_trace(q);
}
