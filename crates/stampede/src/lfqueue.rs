//! Lock-free bounded FIFO queue: the uncontended hot path takes no lock.
//!
//! [`LfQueue`] is the lock-free counterpart of the mutex-based [`Queue`](crate::Queue)
//! (`queue.rs`), which stays compiled in as the *oracle* — the
//! differential suite (`tests/lockfree_equivalence.rs`) drives both
//! through identical op sequences and compares everything observable.
//! The split of responsibilities (DESIGN.md §14):
//!
//! * **Data plane** — items move through an `MpmcRing`: one claim CAS
//!   plus one release store per op, payloads stored *inline* (no
//!   `Arc::new` per item: a destructive FIFO get transfers ownership, so
//!   there is nothing to share). Batch ops claim a contiguous slot range
//!   with a single CAS.
//! * **Control plane** — the ARU controller and the deposit fold stay
//!   behind a mutex, but the hot path only reaches it on *summary
//!   change*: `put` reads the compressed summary-STP through a
//!   `SeqCell` (a few loads), and `get` deposits backward STP only
//!   when the consumer's summary differs from what it last deposited
//!   (one load + compare per op otherwise). A converged loop never
//!   touches the control mutex — the event-driven framing of the
//!   Feedback Scheduling paper applied to the buffer API itself.
//! * **Blocking** — futex-style: waiters register in an atomic counter
//!   and park on a condvar under a tiny `Mutex<()>`; the opposite side
//!   only touches that mutex when the counter says someone is parked.
//!   The wakeup-relevant atomics (the `push_ops`/`pop_ops` epochs and
//!   the waiter counters) are `SeqCst`, giving the Dekker-style
//!   guarantee that either the parker re-checks and sees the op's epoch
//!   bump, or the op sees the parker's registration and wakes it. The
//!   epoch re-check under the park lock (rather than "is the ring
//!   non-empty") also keeps the loom model live: a transiently
//!   full/empty ring (competitor mid-transfer) parks on a condvar the
//!   competitor will signal, instead of spinning on state the loom
//!   scheduler may never let the competitor publish.
//!
//! What the lock-free queue intentionally does **not** do (and why the
//! mutex `Queue` remains the general-purpose buffer): per-item lineage
//! tracing — `alloc`/`get`/`free` events cost a buffered `Vec` push
//! under the state lock this path doesn't have, so `flush_trace` is a
//! no-op and counters + sampled occupancy ride in per-endpoint registry
//! shards (`LfEndpointTele`) instead — and DGC purging
//! (`apply_dead_before` is a no-op: a bounded ring's reclamation is
//! bounded by construction, a popped slot is reused, never
//! accumulated). Close never strands a drainable item: a `put` that
//! claimed its slot before `close()` landed still completes, and the
//! blocking gets treat "closed" as terminal only once the ring is
//! observably empty (they park on the pre-pop epoch otherwise, which
//! the completing push bumps). Items nobody asks for after close are
//! freed by the ring's `Drop`.

use crate::channel::{op_deadline, BufferAdmin};
use crate::error::StampedeError;
use crate::item::ItemData;
use crate::ring::MpmcRing;
use crate::seqlock::{decode_summary, encode_summary, SeqCell};
use crate::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use crate::sync::{Condvar, Mutex};
use crate::task::TaskCtx;
use crate::tele::LfEndpointTele;
use aru_core::{AruConfig, AruController, NodeId, NodeKind, Stp};
use aru_gc::ConsumerMarks;
use aru_metrics::journal::HopLeg;
use aru_metrics::{
    FeedbackHop, Gauge, HopKind, IterKey, Journal, JournalKind, JournalShard, SharedTrace,
    SpanShard,
};
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Instant;
use vtime::{Micros, SimTime, Timestamp};

/// Deposit/mark slots pre-allocated per queue, so consumer endpoints
/// reach their slot without locking or resizing. `configure_consumers`
/// enforces the bound.
pub const MAX_LF_CONSUMERS: usize = 8;

/// Producer-side fold-refresh cadence: even when the published summary
/// generation is unchanged, re-fold every N puts so the producer
/// controller's staleness horizon keeps seeing live feedback (power of
/// two).
pub(crate) const FOLD_REFRESH: u64 = 64;

struct LfStored<T> {
    ts: Timestamp,
    value: T,
    bytes: u64,
}

/// An item handed to a consumer: ownership moves out of the queue — no
/// `Arc`, unlike the non-destructive channel's `StampedItem`.
#[derive(Debug, PartialEq, Eq)]
pub struct LfItem<T> {
    pub ts: Timestamp,
    pub value: T,
}

/// Per-consumer state, written only through the owning consumer index.
struct ConsumerSlot {
    /// Highest consumed timestamp + 1 (0 = nothing consumed yet) — the
    /// GC mark, advanced with a CAS-max loop.
    mark: AtomicU64,
    /// Last deposited summary (encoded; 0 = none): the change gate that
    /// keeps deposits off the control mutex while the summary is stable.
    last_deposit: AtomicU64,
}

/// Control-plane state: reached only on summary change and by admin ops.
/// The span/journal shards live here so the control mutex is the single
/// writer they require — and recording stays off the lock-free hot path
/// by construction (only summary *changes* reach this struct at all).
struct LfControl {
    aru: AruController,
    /// Seqlock generation (word 0 of the summary cell), bumped per write.
    generation: u64,
    consumers: usize,
    spans: SpanShard,
    journal: JournalShard,
    last_deposit_hop: Option<Micros>,
    last_occ: Option<(u64, bool)>,
}

/// Bounded lock-free MPMC FIFO queue with out-of-band summary-STP.
pub struct LfQueue<T: ItemData> {
    node: NodeId,
    name: String,
    ring: MpmcRing<LfStored<T>>,
    closed: AtomicBool,
    live_bytes: AtomicU64,
    /// Completed-push / completed-pop epochs (SeqCst): the condition
    /// parked waiters re-check before sleeping.
    push_ops: AtomicU64,
    pop_ops: AtomicU64,
    cons_waiters: AtomicUsize,
    prod_waiters: AtomicUsize,
    cons_park: Mutex<()>,
    cons_cond: Condvar,
    prod_park: Mutex<()>,
    prod_cond: Condvar,
    control: Mutex<LfControl>,
    /// (generation, encoded summary) published by the control plane.
    summary_cell: SeqCell,
    slots: [ConsumerSlot; MAX_LF_CONSUMERS],
    /// Telemetry bundle: endpoints cut their per-writer shards from it.
    trace: SharedTrace,
    occupancy_gauge: Gauge,
    live_bytes_gauge: Gauge,
    /// Shared journal handle — read for the occupancy watermark config.
    journal_cfg: Journal,
}

impl<T: ItemData> LfQueue<T> {
    pub(crate) fn new(
        node: NodeId,
        name: String,
        config: &AruConfig,
        capacity: usize,
        trace: SharedTrace,
    ) -> Self {
        let tele = trace.telemetry();
        let r = &tele.registry;
        let labels: &[(&str, &str)] = &[("channel", name.as_str()), ("kind", "lfqueue")];
        let occupancy_gauge = r.gauge("aru_channel_occupancy_items", labels);
        let live_bytes_gauge = r.gauge("aru_channel_live_bytes", labels);
        let spans = tele.spans.shard();
        let journal = tele.journal.shard();
        let journal_cfg = tele.journal.clone();
        LfQueue {
            node,
            name,
            ring: MpmcRing::new(capacity),
            closed: AtomicBool::new(false),
            live_bytes: AtomicU64::new(0),
            push_ops: AtomicU64::new(0),
            pop_ops: AtomicU64::new(0),
            cons_waiters: AtomicUsize::new(0),
            prod_waiters: AtomicUsize::new(0),
            cons_park: Mutex::new(()),
            cons_cond: Condvar::new(),
            prod_park: Mutex::new(()),
            prod_cond: Condvar::new(),
            control: Mutex::new(LfControl {
                aru: AruController::new(NodeKind::Queue, 0, false, config),
                generation: 0,
                consumers: 0,
                spans,
                journal,
                last_deposit_hop: None,
                last_occ: None,
            }),
            summary_cell: SeqCell::new(0, 0),
            slots: std::array::from_fn(|_| ConsumerSlot {
                mark: AtomicU64::new(0),
                last_deposit: AtomicU64::new(0),
            }),
            trace,
            occupancy_gauge,
            live_bytes_gauge,
            journal_cfg,
        }
    }

    #[must_use]
    pub fn node(&self) -> NodeId {
        self.node
    }

    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    #[must_use]
    pub fn capacity(&self) -> usize {
        self.ring.capacity()
    }

    /// Items currently queued — a racy snapshot, no lock.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Bytes held — one atomic load, no lock.
    #[must_use]
    pub fn live_bytes(&self) -> u64 {
        self.live_bytes.load(Ordering::SeqCst)
    }

    /// The queue's compressed summary-STP, via the seqlock (falls back to
    /// the control mutex only on sustained collision with a writer).
    #[must_use]
    pub fn summary(&self) -> Option<Stp> {
        self.read_summary().1
    }

    /// `(generation, summary)` — the generation lets producer endpoints
    /// gate their feedback fold on change.
    pub(crate) fn read_summary(&self) -> (u64, Option<Stp>) {
        match self.summary_cell.try_read() {
            Some((gen, enc)) => (gen, decode_summary(enc)),
            None => {
                // Bounded optimism exhausted: a writer is (re)publishing.
                // The writer holds the control mutex, so locking it both
                // waits out the write and yields the authoritative value.
                let c = self.control.lock();
                (c.generation, c.aru.summary())
            }
        }
    }

    pub(crate) fn telemetry(&self) -> &aru_metrics::Telemetry {
        self.trace.telemetry()
    }

    // ---- hot-path ops -------------------------------------------------------

    /// Insert one item, parking while the ring is full. Returns the
    /// queue's summary-STP for the producer to fold (as `Queue::put`
    /// does), or `Err(Closed)` once the queue is closed.
    ///
    /// Uncontended cost: one claim CAS + release store (ring), two
    /// `SeqCst` ops (epoch bump, waiter check), one relaxed RMW
    /// (`live_bytes`), and 2–3 seqlock loads — no lock, no clock read,
    /// no allocation.
    pub fn put(
        &self,
        ts: Timestamp,
        value: T,
        producer: IterKey,
    ) -> Result<Option<Stp>, StampedeError> {
        Ok(self.put_with_gen(ts, value, producer)?.1)
    }

    pub(crate) fn put_with_gen(
        &self,
        ts: Timestamp,
        value: T,
        _producer: IterKey,
    ) -> Result<(u64, Option<Stp>), StampedeError> {
        let bytes = value.size_bytes();
        let mut item = LfStored { ts, value, bytes };
        loop {
            if self.closed.load(Ordering::SeqCst) {
                return Err(StampedeError::Closed);
            }
            // Epoch *before* the attempt: a pop completing after this load
            // flips the epoch and the park re-check refuses to sleep.
            let epoch = self.pop_ops.load(Ordering::SeqCst);
            match self.ring.try_push(item) {
                Ok(()) => break,
                Err(back) => {
                    item = back;
                    self.park_producer(epoch);
                }
            }
        }
        self.live_bytes.fetch_add(bytes, Ordering::Relaxed);
        self.push_ops.fetch_add(1, Ordering::SeqCst);
        self.wake_consumers();
        Ok(self.read_summary())
    }

    /// Insert a batch, claiming contiguous slot ranges (one CAS per
    /// claimed chunk) and parking between chunks while full. The summary
    /// is read once, after the whole batch landed — the same observable
    /// as a put loop, one seqlock read instead of N.
    pub fn put_batch(
        &self,
        _producer: IterKey,
        batch: impl IntoIterator<Item = (Timestamp, T)>,
    ) -> Result<Option<Stp>, StampedeError> {
        let mut pending: VecDeque<LfStored<T>> = batch
            .into_iter()
            .map(|(ts, value)| {
                let bytes = value.size_bytes();
                LfStored { ts, value, bytes }
            })
            .collect();
        if pending.is_empty() {
            return Ok(None);
        }
        loop {
            if self.closed.load(Ordering::SeqCst) {
                // Like the channel's blocking batch slow path: the already-
                // inserted prefix stays visible; the rest reports the close.
                return Err(StampedeError::Closed);
            }
            let epoch = self.pop_ops.load(Ordering::SeqCst);
            let before: u64 = pending.iter().map(|s| s.bytes).sum();
            let n = self.ring.try_push_batch(&mut pending);
            if n > 0 {
                let after: u64 = pending.iter().map(|s| s.bytes).sum();
                self.live_bytes.fetch_add(before - after, Ordering::Relaxed);
                self.push_ops.fetch_add(n as u64, Ordering::SeqCst);
                self.wake_consumers();
            }
            if pending.is_empty() {
                return Ok(self.read_summary().1);
            }
            if n == 0 {
                self.park_producer(epoch);
            }
        }
    }

    /// Remove the oldest item, parking while empty (up to the task's op
    /// timeout). Deposits the consumer's summary-STP (change-gated) and
    /// advances its GC mark. Items already queued stay drainable after
    /// [`LfQueue::close`]; empty-and-closed reports `Err(Closed)`.
    pub fn get(
        &self,
        chan_out_index: usize,
        ctx: &mut TaskCtx,
    ) -> Result<LfItem<T>, StampedeError> {
        let deadline = op_deadline(ctx);
        let mut blocked = false;
        loop {
            let epoch = self.push_ops.load(Ordering::SeqCst);
            if let Some(stored) = self.ring.try_pop() {
                if blocked {
                    ctx.block_end(ctx.now());
                }
                self.finish_pop(&stored, chan_out_index, ctx);
                return Ok(LfItem {
                    ts: stored.ts,
                    value: stored.value,
                });
            }
            if self.closed.load(Ordering::SeqCst) && self.ring.is_empty() {
                if blocked {
                    ctx.block_end(ctx.now());
                }
                return Err(StampedeError::Closed);
            }
            // Closed but not empty: a push claimed its slot but has not
            // released it yet (`try_pop` saw the slot unready). Parking on
            // the pre-pop epoch is safe — the completing push bumps
            // `push_ops` and wakes us, and the park re-check refuses to
            // sleep if it already did. Returning `Closed` here would
            // strand a drainable item, breaking the close contract the
            // mutex oracle keeps.
            if !blocked {
                blocked = true;
                ctx.block_begin(ctx.now());
            }
            if self.park_consumer(epoch, deadline) {
                ctx.block_end(ctx.now());
                return Err(StampedeError::Timeout);
            }
        }
    }

    /// Non-blocking [`LfQueue::get`]: `Ok(None)` when nothing is
    /// available and the queue is open, `Err(Closed)` once it is closed
    /// *and* drained (matching `Queue::try_get`).
    pub fn try_get(
        &self,
        chan_out_index: usize,
        ctx: &mut TaskCtx,
    ) -> Result<Option<LfItem<T>>, StampedeError> {
        match self.ring.try_pop() {
            Some(stored) => {
                self.finish_pop(&stored, chan_out_index, ctx);
                Ok(Some(LfItem {
                    ts: stored.ts,
                    value: stored.value,
                }))
            }
            None if self.closed.load(Ordering::SeqCst) && self.ring.is_empty() => {
                Err(StampedeError::Closed)
            }
            None => Ok(None),
        }
    }

    /// Remove up to `max` items — at least one, parking while empty —
    /// with a single range-claim CAS when items are available.
    pub fn get_batch(
        &self,
        chan_out_index: usize,
        ctx: &mut TaskCtx,
        max: usize,
    ) -> Result<Vec<LfItem<T>>, StampedeError> {
        assert!(max > 0, "batch must be non-empty");
        let deadline = op_deadline(ctx);
        let mut blocked = false;
        let mut popped: Vec<LfStored<T>> = Vec::new();
        loop {
            let epoch = self.push_ops.load(Ordering::SeqCst);
            let n = self.ring.try_pop_batch(&mut popped, max);
            if n > 0 {
                if blocked {
                    ctx.block_end(ctx.now());
                }
                let bytes: u64 = popped.iter().map(|s| s.bytes).sum();
                self.live_bytes.fetch_sub(bytes, Ordering::Relaxed);
                self.pop_ops.fetch_add(n as u64, Ordering::SeqCst);
                // One max-advance for the batch (arrival order need not be
                // timestamp order), exactly like `Queue::get_batch`.
                if let Some(newest) = popped.iter().map(|s| s.ts).max() {
                    self.advance_mark(chan_out_index, newest);
                }
                self.deposit(chan_out_index, ctx);
                self.wake_producers();
                return Ok(popped
                    .into_iter()
                    .map(|s| LfItem {
                        ts: s.ts,
                        value: s.value,
                    })
                    .collect());
            }
            // Same empty-check as `get`: close with an in-flight push must
            // not strand the item (see above).
            if self.closed.load(Ordering::SeqCst) && self.ring.is_empty() {
                if blocked {
                    ctx.block_end(ctx.now());
                }
                return Err(StampedeError::Closed);
            }
            if !blocked {
                blocked = true;
                ctx.block_begin(ctx.now());
            }
            if self.park_consumer(epoch, deadline) {
                ctx.block_end(ctx.now());
                return Err(StampedeError::Timeout);
            }
        }
    }

    /// Snapshot of the per-consumer GC marks (decoded from the lock-free
    /// slots; the control lock is taken only to read the consumer count).
    #[must_use]
    pub fn marks_snapshot(&self) -> ConsumerMarks {
        let n = self.control.lock().consumers;
        let mut marks = ConsumerMarks::new(n);
        for (i, slot) in self.slots.iter().take(n).enumerate() {
            let enc = slot.mark.load(Ordering::SeqCst);
            if enc > 0 {
                marks.advance(i, Timestamp(enc - 1));
            }
        }
        marks
    }

    /// Close the queue: blocked ops wake, later puts fail with
    /// `Err(Closed)`, queued items stay drainable by consumers.
    pub fn close(&self) {
        self.closed.store(true, Ordering::SeqCst);
        {
            let _g = self.cons_park.lock();
            self.cons_cond.notify_all();
        }
        {
            let _g = self.prod_park.lock();
            self.prod_cond.notify_all();
        }
    }

    // ---- internals ----------------------------------------------------------

    /// Post-pop bookkeeping shared by get/try_get: byte accounting, pop
    /// epoch, mark advance, change-gated deposit, producer wakeup.
    fn finish_pop(&self, stored: &LfStored<T>, chan_out_index: usize, ctx: &mut TaskCtx) {
        self.live_bytes.fetch_sub(stored.bytes, Ordering::Relaxed);
        self.pop_ops.fetch_add(1, Ordering::SeqCst);
        self.advance_mark(chan_out_index, stored.ts);
        self.deposit(chan_out_index, ctx);
        self.wake_producers();
    }

    /// CAS-max on the consumer's mark (encoded ts + 1; the loom stand-in
    /// has no `fetch_max`, and this loop is bounded: a CAS failure means
    /// the mark already advanced past us).
    fn advance_mark(&self, chan_out_index: usize, ts: Timestamp) {
        let slot = &self.slots[chan_out_index];
        let enc = ts.0 + 1;
        let mut cur = slot.mark.load(Ordering::Relaxed);
        while cur < enc {
            match slot
                .mark
                .compare_exchange(cur, enc, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Deposit the consumer's summary-STP: fold into the controller and
    /// republish the seqlock cell — but only when the summary differs
    /// from this consumer's last deposit. The converged steady state
    /// costs one load and a compare.
    fn deposit(&self, chan_out_index: usize, ctx: &TaskCtx) {
        let Some(summary) = ctx.summary() else { return };
        let slot = &self.slots[chan_out_index];
        let enc = encode_summary(Some(summary));
        if slot.last_deposit.load(Ordering::Relaxed) == enc {
            return;
        }
        slot.last_deposit.store(enc, Ordering::Relaxed);
        let mut c = self.control.lock();
        c.aru.receive_feedback(chan_out_index, summary);
        let folded = c.aru.summary();
        c.generation += 1;
        // Seqlock writer invariant: we hold the control mutex.
        self.summary_cell.write(c.generation, encode_summary(folded));
        // Feedback-lineage recording (same change gate as the fold we just
        // did — we only get here when the deposited summary moved). This
        // closes the LF path's observability gap: the deposit hop lands in
        // the span ring and flight-recorder journal exactly as the mutex
        // buffers' `BufTele::on_deposit` does.
        let value = summary.period();
        if c.last_deposit_hop != Some(value) {
            c.last_deposit_hop = Some(value);
            let t = ctx.now();
            c.spans.record(FeedbackHop {
                t,
                kind: HopKind::Deposit,
                node: self.node,
                peer: ctx.node(),
                value,
                extra: Micros::ZERO,
            });
            c.journal.record(
                t,
                self.node,
                JournalKind::Hop {
                    leg: HopLeg::Deposit,
                    peer: ctx.node(),
                    value,
                },
            );
        }
    }

    /// Park until a push completes (the epoch moves), close lands, or the
    /// deadline passes; `true` = timed out. The epoch re-check runs under
    /// the park lock, so a wakeup slipping between re-check and sleep is
    /// impossible: wakers take the same lock to notify.
    fn park_consumer(&self, epoch: u64, deadline: Option<Instant>) -> bool {
        self.cons_waiters.fetch_add(1, Ordering::SeqCst);
        let mut g = self.cons_park.lock();
        let timed_out = if self.closed.load(Ordering::SeqCst)
            || self.push_ops.load(Ordering::SeqCst) != epoch
        {
            false
        } else {
            match deadline {
                None => {
                    self.cons_cond.wait(&mut g);
                    false
                }
                Some(dl) => {
                    let now = Instant::now();
                    if now >= dl {
                        true
                    } else {
                        self.cons_cond.wait_for(&mut g, dl - now);
                        false
                    }
                }
            }
        };
        drop(g);
        self.cons_waiters.fetch_sub(1, Ordering::SeqCst);
        timed_out
    }

    /// Park until a pop completes or close lands. Puts carry no op
    /// deadline (`Queue::put` never times out either — backpressure is
    /// the contract).
    fn park_producer(&self, epoch: u64) {
        self.prod_waiters.fetch_add(1, Ordering::SeqCst);
        let mut g = self.prod_park.lock();
        if !self.closed.load(Ordering::SeqCst) && self.pop_ops.load(Ordering::SeqCst) == epoch {
            self.prod_cond.wait(&mut g);
        }
        drop(g);
        self.prod_waiters.fetch_sub(1, Ordering::SeqCst);
    }

    fn wake_consumers(&self) {
        if self.cons_waiters.load(Ordering::SeqCst) != 0 {
            let _g = self.cons_park.lock();
            self.cons_cond.notify_all();
        }
    }

    fn wake_producers(&self) {
        if self.prod_waiters.load(Ordering::SeqCst) != 0 {
            let _g = self.prod_park.lock();
            self.prod_cond.notify_all();
        }
    }
}

impl<T: ItemData> BufferAdmin for LfQueue<T> {
    fn node(&self) -> NodeId {
        self.node
    }

    fn configure_consumers(&self, n: usize) {
        assert!(
            n <= MAX_LF_CONSUMERS,
            "LfQueue supports at most {MAX_LF_CONSUMERS} consumers (asked for {n})"
        );
        let mut c = self.control.lock();
        c.consumers = c.consumers.max(n);
        c.aru.ensure_outputs(n);
    }

    fn marks_snapshot(&self) -> ConsumerMarks {
        LfQueue::marks_snapshot(self)
    }

    fn apply_dead_before(&self, _bound: Timestamp) {
        // Nothing to purge: a bounded ring reuses slots on pop, so
        // reclamation is bounded by construction (see module docs).
    }

    fn close(&self) {
        LfQueue::close(self);
    }

    fn live_bytes(&self) -> u64 {
        LfQueue::live_bytes(self)
    }

    fn flush_trace(&self) {
        // The lock-free queue records no per-item lineage events
        // (documented tradeoff, module docs).
    }

    fn publish_telemetry(&self, now: SimTime) {
        // Counters live in per-endpoint registry shards and merge at
        // snapshot time; only the point-in-time gauges are refreshed
        // here, from lock-free state.
        let len = self.ring.len() as u64;
        self.occupancy_gauge.set(len as f64);
        self.live_bytes_gauge
            .set(self.live_bytes.load(Ordering::SeqCst) as f64);
        // Occupancy journal record on change / watermark crossing —
        // exporter-tick cadence only, so locking the control mutex for
        // its journal shard is off the hot path.
        let watermark = self.journal_cfg.occ_watermark();
        let high = len >= watermark;
        let mut c = self.control.lock();
        if c.last_occ != Some((len, high)) {
            c.last_occ = Some((len, high));
            c.journal.record(
                now,
                self.node,
                JournalKind::Occupancy {
                    len,
                    watermark,
                    high,
                },
            );
        }
    }
}

/// Producer endpoint. Folds the returned summary into the task
/// controller only when the published generation moved, plus a
/// `FOLD_REFRESH` heartbeat so staleness tracking keeps seeing live
/// feedback between changes.
pub struct LfQueueOutput<T: ItemData> {
    pub(crate) q: Arc<LfQueue<T>>,
    pub(crate) thread_out_index: usize,
    tele: LfEndpointTele,
    last_gen: Option<u64>,
    ops: u64,
    // Per-endpoint recording shards: the producer endpoint is the single
    // writer, so the Return hop (queue summary handed back on put) can be
    // recorded without touching the queue's control mutex.
    spans: SpanShard,
    journal: JournalShard,
    last_return: Option<Micros>,
}

impl<T: ItemData> LfQueueOutput<T> {
    pub(crate) fn new(q: Arc<LfQueue<T>>, thread_out_index: usize) -> Self {
        let tele = LfEndpointTele::output(q.telemetry(), q.name());
        let spans = q.telemetry().spans.shard();
        let journal = q.telemetry().journal.shard();
        LfQueueOutput {
            q,
            thread_out_index,
            tele,
            last_gen: None,
            ops: 0,
            spans,
            journal,
            last_return: None,
        }
    }

    pub fn put(&mut self, ctx: &mut TaskCtx, ts: Timestamp, value: T) -> Result<(), StampedeError> {
        let t0 = ctx.op_sample();
        let (gen, summary) = self.q.put_with_gen(ts, value, ctx.iter_key())?;
        let q = &self.q;
        self.tele.on_op(1, || q.len());
        self.fold(ctx, gen, summary);
        if let Some(t0) = t0 {
            ctx.record_put_ns(t0);
        }
        Ok(())
    }

    pub fn put_batch(
        &mut self,
        ctx: &mut TaskCtx,
        batch: impl IntoIterator<Item = (Timestamp, T)>,
    ) -> Result<(), StampedeError> {
        let t0 = ctx.op_sample();
        let summary = self.q.put_batch(ctx.iter_key(), batch)?;
        let (gen, _) = self.q.read_summary();
        let q = &self.q;
        self.tele.on_op(1, || q.len());
        self.fold(ctx, gen, summary);
        if let Some(t0) = t0 {
            ctx.record_put_ns(t0);
        }
        Ok(())
    }

    /// Change-gated feedback fold (one compare when converged).
    fn fold(&mut self, ctx: &mut TaskCtx, gen: u64, summary: Option<Stp>) {
        self.ops = self.ops.wrapping_add(1);
        let refresh = self.ops & (FOLD_REFRESH - 1) == 0;
        if self.last_gen == Some(gen) && !refresh {
            return;
        }
        self.last_gen = Some(gen);
        if let Some(s) = summary {
            // Return hop on value change: the queue's summary reached this
            // producer. Mirrors `BufTele::on_return` on the mutex buffers.
            let value = s.period();
            if self.last_return != Some(value) {
                self.last_return = Some(value);
                let t = ctx.now();
                self.spans.record(FeedbackHop {
                    t,
                    kind: HopKind::Return,
                    node: self.q.node(),
                    peer: ctx.node(),
                    value,
                    extra: Micros::ZERO,
                });
                self.journal.record(
                    t,
                    self.q.node(),
                    JournalKind::Hop {
                        leg: HopLeg::Return,
                        peer: ctx.node(),
                        value,
                    },
                );
            }
            ctx.receive_feedback_from(self.thread_out_index, s, self.q.node());
        }
    }

    #[must_use]
    pub fn queue(&self) -> &LfQueue<T> {
        &self.q
    }

    #[must_use]
    pub fn queue_arc(&self) -> Arc<LfQueue<T>> {
        Arc::clone(&self.q)
    }
}

/// Consumer endpoint.
pub struct LfQueueInput<T: ItemData> {
    pub(crate) q: Arc<LfQueue<T>>,
    pub(crate) chan_out_index: usize,
    tele: LfEndpointTele,
}

impl<T: ItemData> LfQueueInput<T> {
    pub(crate) fn new(q: Arc<LfQueue<T>>, chan_out_index: usize) -> Self {
        let tele = LfEndpointTele::input(q.telemetry(), q.name());
        LfQueueInput {
            q,
            chan_out_index,
            tele,
        }
    }

    pub fn get(&mut self, ctx: &mut TaskCtx) -> Result<LfItem<T>, StampedeError> {
        let t0 = ctx.op_sample();
        let res = self.q.get(self.chan_out_index, ctx);
        match &res {
            Ok(_) => {
                let q = &self.q;
                self.tele.on_op(1, || q.len());
            }
            Err(StampedeError::Timeout) => self.tele.on_timeout(),
            Err(_) => {}
        }
        if let Some(t0) = t0 {
            ctx.record_get_ns(t0);
        }
        res
    }

    pub fn try_get(&mut self, ctx: &mut TaskCtx) -> Result<Option<LfItem<T>>, StampedeError> {
        let res = self.q.try_get(self.chan_out_index, ctx);
        if matches!(&res, Ok(Some(_))) {
            let q = &self.q;
            self.tele.on_op(1, || q.len());
        }
        res
    }

    pub fn get_batch(
        &mut self,
        ctx: &mut TaskCtx,
        max: usize,
    ) -> Result<Vec<LfItem<T>>, StampedeError> {
        let t0 = ctx.op_sample();
        let res = self.q.get_batch(self.chan_out_index, ctx, max);
        match &res {
            Ok(got) => {
                let n = got.len() as u64;
                let q = &self.q;
                self.tele.on_op(n, || q.len());
            }
            Err(StampedeError::Timeout) => self.tele.on_timeout(),
            Err(_) => {}
        }
        if let Some(t0) = t0 {
            ctx.record_get_ns(t0);
        }
        res
    }

    #[must_use]
    pub fn queue(&self) -> &LfQueue<T> {
        &self.q
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use crate::bench_api;
    use vtime::Micros;

    fn q(capacity: usize) -> Arc<LfQueue<Vec<u8>>> {
        let q = Arc::new(LfQueue::new(
            NodeId(1),
            "lf".into(),
            &AruConfig::aru_min(),
            capacity,
            SharedTrace::new(),
        ));
        BufferAdmin::configure_consumers(&*q, 1);
        q
    }

    fn ctx() -> TaskCtx {
        bench_api::task_ctx(
            NodeId(9),
            "lf-test",
            1,
            false,
            &AruConfig::aru_min(),
            Arc::new(vtime::ManualClock::new()),
            SharedTrace::new(),
        )
    }

    #[test]
    fn fifo_put_get_with_accounting() {
        let q = q(8);
        let p = IterKey::new(NodeId(0), 0);
        let mut c = ctx();
        for ts in 0..5u64 {
            q.put(Timestamp(ts), vec![ts as u8; 8], p).unwrap();
        }
        assert_eq!(q.len(), 5);
        assert_eq!(q.live_bytes(), 40);
        for ts in 0..5u64 {
            let it = q.get(0, &mut c).unwrap();
            assert_eq!(it.ts, Timestamp(ts));
            assert_eq!(it.value, vec![ts as u8; 8]);
        }
        assert_eq!(q.len(), 0);
        assert_eq!(q.live_bytes(), 0);
        assert_eq!(q.marks_snapshot().mark(0), Some(Timestamp(4)));
    }

    #[test]
    fn deposit_publishes_summary_to_producers() {
        let q = q(8);
        let p = IterKey::new(NodeId(0), 0);
        let mut c = ctx();
        bench_api::warm_summary(&mut c, Stp(Micros(1_500)));
        assert_eq!(q.put(Timestamp(0), vec![0; 4], p).unwrap(), None);
        q.get(0, &mut c).unwrap();
        let s = q.put(Timestamp(1), vec![0; 4], p).unwrap();
        assert_eq!(s, q.summary());
        assert!(s.is_some(), "deposited summary must reach the next put");
    }

    #[test]
    fn close_wakes_and_drains() {
        let q = q(8);
        let p = IterKey::new(NodeId(0), 0);
        q.put(Timestamp(0), vec![1u8; 4], p).unwrap();
        q.close();
        let mut c = ctx();
        // Pre-close items stay drainable.
        assert_eq!(q.get(0, &mut c).unwrap().ts, Timestamp(0));
        assert!(matches!(q.get(0, &mut c), Err(StampedeError::Closed)));
        assert!(matches!(
            q.put(Timestamp(1), vec![1u8; 4], p),
            Err(StampedeError::Closed)
        ));
    }

    #[test]
    fn blocked_get_times_out() {
        let q = q(8);
        let mut c = ctx();
        bench_api::set_op_timeout(&mut c, Micros(10_000)); // 10ms
        let t0 = std::time::Instant::now();
        assert!(matches!(q.get(0, &mut c), Err(StampedeError::Timeout)));
        assert!(t0.elapsed() < std::time::Duration::from_secs(5));
    }

    #[test]
    fn full_queue_blocks_put_until_get() {
        let q = q(2);
        let p = IterKey::new(NodeId(0), 0);
        q.put(Timestamp(0), vec![0u8; 4], p).unwrap();
        q.put(Timestamp(1), vec![0u8; 4], p).unwrap();
        let q2 = Arc::clone(&q);
        let producer = std::thread::spawn(move || {
            q2.put(Timestamp(2), vec![0u8; 4], p).unwrap();
        });
        // Give the producer a chance to park (best-effort).
        std::thread::sleep(std::time::Duration::from_millis(5));
        let mut c = ctx();
        assert_eq!(q.get(0, &mut c).unwrap().ts, Timestamp(0));
        producer.join().unwrap();
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn batch_ops_round_trip() {
        let q = q(16);
        let p = IterKey::new(NodeId(0), 0);
        let mut c = ctx();
        q.put_batch(p, (0..10u64).map(|ts| (Timestamp(ts), vec![ts as u8; 4])))
            .unwrap();
        assert_eq!(q.len(), 10);
        let batch = q.get_batch(0, &mut c, 6).unwrap();
        assert_eq!(batch.len(), 6);
        assert!(batch.windows(2).all(|w| w[0].ts < w[1].ts));
        let rest = q.get_batch(0, &mut c, 64).unwrap();
        assert_eq!(rest.len(), 4);
        assert_eq!(q.live_bytes(), 0);
    }

    #[test]
    fn oversized_batch_spills_across_capacity() {
        // Batch larger than the ring: put_batch must park between chunks
        // while a consumer drains.
        let q = q(4);
        let p = IterKey::new(NodeId(0), 0);
        let q2 = Arc::clone(&q);
        let producer = std::thread::spawn(move || {
            q2.put_batch(p, (0..32u64).map(|ts| (Timestamp(ts), vec![0u8; 4])))
                .unwrap();
        });
        let mut c = ctx();
        for ts in 0..32u64 {
            assert_eq!(q.get(0, &mut c).unwrap().ts, Timestamp(ts));
        }
        producer.join().unwrap();
        assert_eq!(q.len(), 0);
    }
}
