//! Task threads: the canonical Stampede loop plus ARU hooks.
//!
//! Every application task runs:
//!
//! ```text
//! loop {
//!     iteration_begin                  // clock read
//!     body(ctx)                        // gets (may block) → compute → puts
//!     periodicity_sync                 // current-STP, summary-STP, pacing
//!     sleep(pacing residual)           // sources only, by default
//! }
//! ```
//!
//! The runtime owns the loop; the application supplies only the body, which
//! is exactly the programming model the paper describes ("each thread is
//! required to call \[periodicity_sync\] at the end of every thread iteration
//! loop" — here the runtime calls it for you).

use crate::error::{Step, TaskResult};
use crate::shutdown::Shutdown;
use crate::tele::TaskTele;
use aru_core::{AruConfig, AruController, NodeId, NodeKind, Stp};
use aru_gc::DgcResult;
use aru_metrics::{IterKey, SharedTrace};
use crate::sync::RwLock;
use std::sync::Arc;
use vtime::{Clock, Micros, SimTime, Timestamp};

/// Per-task context handed to the body on every iteration.
///
/// It carries the thread's ARU controller (STP meter, backward vector,
/// pacer), the trace recorder, the shutdown signal and the live DGC result
/// for computation elimination.
pub struct TaskCtx {
    node: NodeId,
    name: String,
    seq: u64,
    controller: AruController,
    /// Retained so [`TaskCtx::recover`] can rebuild the controller after a
    /// crash (controller state from a half-finished iteration is garbage).
    config: AruConfig,
    n_outputs: usize,
    is_source: bool,
    /// Deadline applied to every blocking channel/queue operation this task
    /// issues; `None` means block forever (classic Stampede semantics).
    op_timeout: Option<Micros>,
    clock: Arc<dyn Clock>,
    trace: SharedTrace,
    shutdown: Shutdown,
    dgc: Arc<RwLock<DgcResult>>,
    /// Deferred channel releases, flushed when the iteration ends
    /// (consume-on-iteration-end semantics).
    releases: Vec<Box<dyn FnOnce() + Send>>,
    /// Thread-private live telemetry: STP gauges, iteration/pacing
    /// counters, sampled op latency, feedback-span hops (DESIGN.md §12).
    tele: TaskTele,
}

impl TaskCtx {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        node: NodeId,
        name: String,
        n_outputs: usize,
        is_source: bool,
        config: &AruConfig,
        clock: Arc<dyn Clock>,
        trace: SharedTrace,
        shutdown: Shutdown,
        dgc: Arc<RwLock<DgcResult>>,
    ) -> Self {
        let tele = TaskTele::new(trace.telemetry(), &name, config.control.label());
        TaskCtx {
            node,
            name,
            seq: 0,
            controller: AruController::new(NodeKind::Thread, n_outputs, is_source, config),
            config: config.clone(),
            n_outputs,
            is_source,
            op_timeout: None,
            clock,
            trace,
            shutdown,
            dgc,
            releases: Vec::new(),
            tele,
        }
    }

    /// This task's node id in the task graph.
    #[must_use]
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Task name (diagnostics).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Current time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.clock.now()
    }

    /// Identity of the current iteration (for trace lineage).
    #[must_use]
    pub fn iter_key(&self) -> IterKey {
        IterKey::new(self.node, self.seq)
    }

    /// Has the runtime requested shutdown? Long-running bodies should poll
    /// this and return [`Step::Stop`].
    #[must_use]
    pub fn is_shutdown(&self) -> bool {
        self.shutdown.is_set()
    }

    /// DGC computation elimination (paper §4): is virtual time `ts` already
    /// dead in every buffer this thread feeds? If so, processing an input
    /// with that timestamp is provably wasted and the body should skip it.
    #[must_use]
    pub fn should_skip(&self, ts: Timestamp) -> bool {
        ts < self.dgc.read().thread_skip_before(self.node)
    }

    /// Record that this (sink) task emitted a pipeline output for frame
    /// `ts` — e.g. the GUI displayed a tracking result.
    pub fn emit_output(&mut self, ts: Timestamp) {
        let now = self.clock.now();
        self.trace.sink_output(now, self.iter_key(), ts);
    }

    /// The thread's current summary-STP (piggybacked on gets).
    #[must_use]
    pub fn summary(&self) -> Option<Stp> {
        self.controller.summary()
    }

    /// Report downstream buffer occupancy (items) to the control law.
    /// A no-op unless the task is configured with an occupancy-regulating
    /// law (`PidInput::OccupancyError`); producers can call it after every
    /// put with the buffer's lock-free `len()`.
    pub fn observe_occupancy(&mut self, occ: usize) {
        self.controller.observe_occupancy(occ as f64);
    }

    // ---- hooks used by channel/queue endpoints ------------------------------

    pub(crate) fn block_begin(&mut self, now: SimTime) {
        self.controller.block_begin(now);
    }

    pub(crate) fn block_end(&mut self, now: SimTime) {
        self.controller.block_end(now);
    }

    pub(crate) fn receive_feedback(&mut self, out_index: usize, stp: Stp) {
        let now = self.clock.now();
        self.controller.receive_feedback_at(out_index, stp, now);
    }

    /// [`TaskCtx::receive_feedback`] that also records a feedback-span
    /// `Fold` hop naming the buffer the summary came back from.
    pub(crate) fn receive_feedback_from(&mut self, out_index: usize, stp: Stp, from: NodeId) {
        let now = self.clock.now();
        self.tele.on_fold(now, self.node, from, stp.period());
        self.controller.receive_feedback_at(out_index, stp, now);
    }

    /// Feedback fold with a caller-provided time: the fan-out path folds N
    /// channels' summaries at one shared clock read instead of N reads.
    /// Records the `Fold` hop like [`TaskCtx::receive_feedback_from`].
    pub(crate) fn receive_feedback_from_at(
        &mut self,
        out_index: usize,
        stp: Stp,
        now: SimTime,
        from: NodeId,
    ) {
        self.tele.on_fold(now, self.node, from, stp.period());
        self.controller.receive_feedback_at(out_index, stp, now);
    }

    /// Latency sample gate for endpoint ops (1 in N; see `tele`).
    pub(crate) fn op_sample(&mut self) -> Option<std::time::Instant> {
        self.tele.op_sample()
    }

    pub(crate) fn record_put_ns(&mut self, t0: std::time::Instant) {
        self.tele.record_put_ns(t0);
    }

    pub(crate) fn record_get_ns(&mut self, t0: std::time::Instant) {
        self.tele.record_get_ns(t0);
    }

    /// Op timeout applied by blocking buffer operations.
    pub(crate) fn op_timeout(&self) -> Option<Micros> {
        self.op_timeout
    }

    pub(crate) fn set_op_timeout(&mut self, timeout: Option<Micros>) {
        self.op_timeout = timeout;
    }

    /// Register a channel release to run when the current iteration ends.
    pub(crate) fn defer_release(&mut self, release: Box<dyn FnOnce() + Send>) {
        self.releases.push(release);
    }

    /// Trace recorder (crate-internal: used by the network layer to record
    /// allocations at send time).
    pub(crate) fn trace(&self) -> &SharedTrace {
        &self.trace
    }

    // ---- loop driver --------------------------------------------------------

    /// Run the task loop to completion. Returns the number of iterations.
    ///
    /// Borrows `self` and the body so the supervisor can call it again with
    /// the same context after a crash (see [`TaskCtx::recover`]); iteration
    /// seqs therefore stay unique across restarts.
    pub(crate) fn run(&mut self, body: &mut (dyn FnMut(&mut TaskCtx) -> TaskResult + Send)) -> u64 {
        loop {
            if self.shutdown.is_set() {
                break;
            }
            let t0 = self.clock.now();
            self.controller.iteration_begin(t0);
            let step = body(self);
            debug_assert!(
                !self.controller.is_blocked(),
                "task body returned while blocked"
            );
            // The iteration is over: release every item it consumed so the
            // channels' GC marks advance.
            for release in self.releases.drain(..) {
                release();
            }
            let t1 = self.clock.now();
            let outcome = self.controller.iteration_end(t1);
            self.tele
                .on_iteration(t1, self.node, &outcome, self.controller.meter());
            let key = self.iter_key();
            self.trace.iter_end(t1, key, outcome.current_stp.period());
            if outcome.stale {
                self.trace.stale_summary(t1, key);
            }
            if outcome.law_fired {
                if let (Some(raw), Some(target)) = (outcome.raw_target, outcome.pace_target) {
                    self.trace
                        .pace_decision(t1, self.node, raw.period(), target.period(), outcome.clamped);
                }
            }
            self.seq += 1;
            match step {
                Ok(Step::Continue) => {
                    if !outcome.sleep.is_zero() && self.shutdown.sleep(outcome.sleep) {
                        break;
                    }
                }
                Ok(Step::Stop) | Err(_) => break,
            }
        }
        self.seq
    }

    /// Reset after a crash, before the supervisor re-enters [`TaskCtx::run`].
    ///
    /// The controller is rebuilt from the stored config — STP meter state
    /// from the half-finished iteration (e.g. an unmatched `block_begin`) is
    /// unusable, and summary feedback will re-arrive on the next get/put.
    /// Deferred releases from the crashed iteration are still executed so the
    /// consumed items don't pin channel GC forever. The iteration seq is
    /// advanced past the crashed iteration so its `IterKey` is never reused.
    pub(crate) fn recover(&mut self) {
        for release in self.releases.drain(..) {
            release();
        }
        self.controller = AruController::new(
            NodeKind::Thread,
            self.n_outputs,
            self.is_source,
            &self.config,
        );
        self.tele.on_recover();
        self.seq += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::StampedeError;
    use vtime::{ManualClock, Micros};

    fn ctx(clock: ManualClock) -> TaskCtx {
        TaskCtx::new(
            NodeId(0),
            "t".into(),
            1,
            true,
            &AruConfig::aru_min(),
            Arc::new(clock),
            SharedTrace::new(),
            Shutdown::new(),
            Arc::new(RwLock::new(DgcResult::default())),
        )
    }

    #[test]
    fn loop_stops_on_stop() {
        let clock = ManualClock::new();
        let mut c = ctx(clock);
        let mut count = 0;
        let iters = c.run(&mut move |_: &mut TaskCtx| {
            count += 1;
            if count >= 3 {
                Ok(Step::Stop)
            } else {
                Ok(Step::Continue)
            }
        });
        assert_eq!(iters, 3);
    }

    #[test]
    fn loop_stops_on_error() {
        let clock = ManualClock::new();
        let mut c = ctx(clock);
        let iters = c.run(&mut |_: &mut TaskCtx| Err(StampedeError::Closed));
        assert_eq!(iters, 1);
    }

    #[test]
    fn loop_stops_on_shutdown() {
        let clock = ManualClock::new();
        let shutdown = Shutdown::new();
        let mut c = TaskCtx::new(
            NodeId(0),
            "t".into(),
            0,
            true,
            &AruConfig::aru_min(),
            Arc::new(clock),
            SharedTrace::new(),
            shutdown.clone(),
            Arc::new(RwLock::new(DgcResult::default())),
        );
        shutdown.set();
        let iters = c.run(&mut |_: &mut TaskCtx| Ok(Step::Continue));
        assert_eq!(iters, 0);
    }

    #[test]
    fn iterations_are_traced() {
        let clock = ManualClock::new();
        let trace = SharedTrace::new();
        let mut c = TaskCtx::new(
            NodeId(7),
            "t".into(),
            0,
            true,
            &AruConfig::aru_min(),
            Arc::new(clock.clone()),
            trace.clone(),
            Shutdown::new(),
            Arc::new(RwLock::new(DgcResult::default())),
        );
        let mut n = 0;
        c.run(&mut move |ctx: &mut TaskCtx| {
            let _ = ctx.now(); // touch
            n += 1;
            if n >= 2 {
                Ok(Step::Stop)
            } else {
                Ok(Step::Continue)
            }
        });
        let snap = trace.snapshot();
        let iter_ends = snap
            .events()
            .iter()
            .filter(|e| matches!(e, aru_metrics::TraceEvent::IterEnd { .. }))
            .count();
        assert_eq!(iter_ends, 2);
    }

    #[test]
    fn should_skip_consults_dgc() {
        let clock = ManualClock::new();
        let dgc = Arc::new(RwLock::new(DgcResult::default()));
        let c = TaskCtx::new(
            NodeId(3),
            "t".into(),
            1,
            false,
            &AruConfig::aru_min(),
            Arc::new(clock),
            SharedTrace::new(),
            Shutdown::new(),
            Arc::clone(&dgc),
        );
        assert!(!c.should_skip(Timestamp(5)));
        dgc.write()
            .skip_before
            .insert(NodeId(3), Timestamp(10));
        assert!(c.should_skip(Timestamp(5)));
        assert!(!c.should_skip(Timestamp(10)));
    }

    #[test]
    fn emit_output_traces_sink_event() {
        let clock = ManualClock::new();
        clock.set(SimTime(50));
        let trace = SharedTrace::new();
        let mut c = TaskCtx::new(
            NodeId(1),
            "gui".into(),
            0,
            false,
            &AruConfig::aru_min(),
            Arc::new(clock),
            trace.clone(),
            Shutdown::new(),
            Arc::new(RwLock::new(DgcResult::default())),
        );
        c.emit_output(Timestamp(4));
        let snap = trace.snapshot();
        assert!(matches!(
            snap.events()[0],
            aru_metrics::TraceEvent::SinkOutput { ts: Timestamp(4), .. }
        ));
    }

    #[test]
    fn pacing_sleep_is_interruptible() {
        // Source paced to a huge period must still stop promptly.
        let shutdown = Shutdown::new();
        let mut c = TaskCtx::new(
            NodeId(0),
            "src".into(),
            1,
            true,
            &AruConfig::aru_min(),
            Arc::new(vtime::WallClock::new()),
            SharedTrace::new(),
            shutdown.clone(),
            Arc::new(RwLock::new(DgcResult::default())),
        );
        c.receive_feedback(0, Stp(Micros::from_secs(3600)));
        let s2 = shutdown.clone();
        let h = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(20));
            s2.set();
        });
        let t0 = std::time::Instant::now();
        c.run(&mut |_: &mut TaskCtx| Ok(Step::Continue));
        assert!(t0.elapsed() < std::time::Duration::from_secs(10));
        h.join().unwrap();
    }

    #[test]
    fn recover_resets_controller_and_skips_crashed_seq() {
        let clock = ManualClock::new();
        let mut c = ctx(clock);
        // Simulate a crash mid-iteration: blocked, feedback received,
        // releases pending.
        let released = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let r2 = Arc::clone(&released);
        c.block_begin(SimTime(0));
        c.receive_feedback(0, Stp(Micros(500)));
        c.defer_release(Box::new(move || {
            r2.store(true, std::sync::atomic::Ordering::SeqCst);
        }));
        let crashed_key = c.iter_key();
        c.recover();
        assert!(
            released.load(std::sync::atomic::Ordering::SeqCst),
            "pending releases must run so GC marks advance"
        );
        assert_ne!(c.iter_key(), crashed_key, "crashed IterKey never reused");
        assert_eq!(c.summary(), None, "controller state rebuilt from scratch");
        // The rebuilt loop runs normally.
        let mut n = 0;
        let iters = c.run(&mut move |_: &mut TaskCtx| {
            n += 1;
            if n >= 2 {
                Ok(Step::Stop)
            } else {
                Ok(Step::Continue)
            }
        });
        assert!(iters >= 2);
    }
}
