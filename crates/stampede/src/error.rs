//! Runtime error and task-step types.

use std::fmt;

/// Errors surfaced to task bodies by channel/queue operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StampedeError {
    /// The buffer was closed (runtime shutting down); no further items will
    /// ever arrive. Task bodies normally propagate this with `?`, which the
    /// task loop converts into a clean stop.
    Closed,
    /// The runtime is shutting down.
    Shutdown,
    /// A blocking channel/queue operation exceeded the configured op
    /// timeout (see `RuntimeBuilder::with_op_timeout`). The buffer is still
    /// usable; the body may retry or give up.
    Timeout,
    /// A supervised task exhausted its restart budget; the supervisor
    /// escalated to a runtime-wide shutdown.
    TaskFailed,
}

impl fmt::Display for StampedeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StampedeError::Closed => write!(f, "buffer closed"),
            StampedeError::Shutdown => write!(f, "runtime shutting down"),
            StampedeError::Timeout => write!(f, "blocking operation timed out"),
            StampedeError::TaskFailed => write!(f, "task failed permanently"),
        }
    }
}

impl std::error::Error for StampedeError {}

/// What a task body wants to happen after the current iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// Run another iteration.
    Continue,
    /// Stop this task cleanly.
    Stop,
}

/// The return type of task bodies: `Err` stops the task just like
/// `Ok(Step::Stop)` — it exists so `?` on channel operations reads
/// naturally in application code.
pub type TaskResult = Result<Step, StampedeError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert_eq!(StampedeError::Closed.to_string(), "buffer closed");
        assert_eq!(StampedeError::Shutdown.to_string(), "runtime shutting down");
        assert_eq!(
            StampedeError::Timeout.to_string(),
            "blocking operation timed out"
        );
        assert_eq!(
            StampedeError::TaskFailed.to_string(),
            "task failed permanently"
        );
    }

    #[test]
    fn question_mark_ergonomics() {
        fn body(fail: bool) -> TaskResult {
            if fail {
                Err(StampedeError::Closed)?;
            }
            Ok(Step::Continue)
        }
        assert_eq!(body(false), Ok(Step::Continue));
        assert_eq!(body(true), Err(StampedeError::Closed));
    }
}
