//! Telemetry glue between the runtime's hot paths and the live metrics
//! registry (DESIGN.md §12).
//!
//! Two structs, two cost regimes:
//!
//! * [`BufTele`] lives **inside a buffer's state mutex** — the channel/queue
//!   ops already hold it, so recording is plain integer arithmetic on
//!   fields the cache already owns: no atomics, no extra locks. Occupancy
//!   is *sampled* (1 in [`OCC_SAMPLE`] ops) into a plain [`Hist`]; the
//!   accumulated deltas are drained to the shared registry only when the
//!   exporter (or shutdown) calls `publish` — the put/get hot path never
//!   touches a shared cache line for telemetry.
//! * [`TaskTele`] is **task-thread-private** and records straight to the
//!   registry's wait-free handles at *iteration* cadence (µs-scale, far off
//!   the per-op budget). Per-op put/get latency is sampled 1 in
//!   [`LAT_SAMPLE`] calls on the endpoint side.
//!
//! Both own a [`SpanShard`] and record feedback-loop hops **only when the
//! carried summary value changes** — a converged pipeline pays one compare
//! per op and records nothing (see `aru_metrics::spans`).

use aru_core::NodeId;
use aru_metrics::journal::{law_code, HopLeg};
use aru_metrics::{
    Counter, FeedbackHop, Gauge, Hist, Histogram, HopKind, Journal, JournalKind, JournalShard,
    SpanShard, Telemetry,
};
use std::time::Instant;
use vtime::{Micros, SimTime};

/// Occupancy sampling cadence for buffer ops (power of two).
const OCC_SAMPLE: u64 = 16;
/// Endpoint-side put/get latency sampling cadence (power of two).
const LAT_SAMPLE: u64 = 64;

/// Per-buffer (channel/queue) telemetry accumulator. All methods are called
/// under the buffer's state mutex by its existing ops; `publish` drains the
/// accumulated deltas into the shared registry.
pub(crate) struct BufTele {
    node: NodeId,
    // Registry sinks (cold handles, written only by `publish`).
    puts: Counter,
    gets: Counter,
    purged: Counter,
    timeouts: Counter,
    occupancy_hist: Histogram,
    occupancy: Gauge,
    live_bytes: Gauge,
    // Plain in-mutex accumulators (hot, drained by `publish`).
    d_puts: u64,
    d_gets: u64,
    d_purged: u64,
    d_timeouts: u64,
    occ: Hist,
    seq: u64,
    // Feedback-loop span recording (change-triggered).
    spans: SpanShard,
    last_deposit: Option<Micros>,
    last_return: Option<Micros>,
    // Flight-recorder journal (DESIGN.md §16): hop records ride the same
    // change gates as the spans; occupancy records are cut at publish
    // cadence on length change or a watermark crossing.
    journal: JournalShard,
    journal_cfg: Journal,
    last_occ: Option<(u64, bool)>,
}

impl BufTele {
    pub(crate) fn new(tele: &Telemetry, kind: &'static str, name: &str, node: NodeId) -> Self {
        let r = &tele.registry;
        let labels: &[(&str, &str)] = &[("channel", name), ("kind", kind)];
        BufTele {
            node,
            puts: r.counter("aru_channel_puts_total", labels),
            gets: r.counter("aru_channel_gets_total", labels),
            purged: r.counter("aru_channel_purged_total", labels),
            timeouts: r.counter("aru_channel_timeouts_total", labels),
            occupancy_hist: r.histogram("aru_channel_occupancy", labels),
            occupancy: r.gauge("aru_channel_occupancy_items", labels),
            live_bytes: r.gauge("aru_channel_live_bytes", labels),
            d_puts: 0,
            d_gets: 0,
            d_purged: 0,
            d_timeouts: 0,
            occ: Hist::new(),
            seq: 0,
            spans: tele.spans.shard(),
            last_deposit: None,
            last_return: None,
            journal: tele.journal.shard(),
            journal_cfg: tele.journal.clone(),
            last_occ: None,
        }
    }

    #[inline]
    fn sample_occupancy(&mut self, len: usize) {
        self.seq = self.seq.wrapping_add(1);
        if self.seq & (OCC_SAMPLE - 1) == 0 {
            self.occ.record(len as u64);
        }
    }

    /// `n` items inserted; `len` is the buffer's occupancy afterwards.
    #[inline]
    pub(crate) fn on_put(&mut self, n: u64, len: usize) {
        self.d_puts += n;
        self.sample_occupancy(len);
    }

    /// `n` items delivered to a consumer; `len` is the occupancy afterwards.
    #[inline]
    pub(crate) fn on_get(&mut self, n: u64, len: usize) {
        self.d_gets += n;
        self.sample_occupancy(len);
    }

    /// `n` dead items reclaimed (REF floor / DGC purge).
    #[inline]
    pub(crate) fn on_purged(&mut self, n: u64) {
        self.d_purged += n;
    }

    /// A blocking op hit its deadline.
    #[inline]
    pub(crate) fn on_timeout(&mut self) {
        self.d_timeouts += 1;
    }

    /// A consumer deposited its summary-STP at this buffer. Records a
    /// [`HopKind::Deposit`] hop when the value differs from the last one
    /// (the clock closure is only evaluated then).
    #[inline]
    pub(crate) fn on_deposit(
        &mut self,
        consumer: NodeId,
        value: Micros,
        now: impl FnOnce() -> SimTime,
    ) {
        if self.last_deposit == Some(value) {
            return;
        }
        self.last_deposit = Some(value);
        let t = now();
        self.spans.record(FeedbackHop {
            t,
            kind: HopKind::Deposit,
            node: self.node,
            peer: consumer,
            value,
            extra: Micros::ZERO,
        });
        self.journal.record(
            t,
            self.node,
            JournalKind::Hop {
                leg: HopLeg::Deposit,
                peer: consumer,
                value,
            },
        );
    }

    /// This buffer's summary-STP was handed back to a producer on `put`.
    /// Records a [`HopKind::Return`] hop on value change.
    #[inline]
    pub(crate) fn on_return(
        &mut self,
        producer: NodeId,
        value: Micros,
        now: impl FnOnce() -> SimTime,
    ) {
        if self.last_return == Some(value) {
            return;
        }
        self.last_return = Some(value);
        let t = now();
        self.spans.record(FeedbackHop {
            t,
            kind: HopKind::Return,
            node: self.node,
            peer: producer,
            value,
            extra: Micros::ZERO,
        });
        self.journal.record(
            t,
            self.node,
            JournalKind::Hop {
                leg: HopLeg::Return,
                peer: producer,
                value,
            },
        );
    }

    /// Drain accumulated deltas into the shared registry and refresh the
    /// point-in-time gauges. Called by the exporter tick and at shutdown —
    /// never from a put/get. Journals an occupancy record when the length
    /// changed since the last publish or crossed the configured watermark.
    pub(crate) fn publish(&mut self, now: SimTime, len: usize, live_bytes: u64) {
        self.puts.add(std::mem::take(&mut self.d_puts));
        self.gets.add(std::mem::take(&mut self.d_gets));
        self.purged.add(std::mem::take(&mut self.d_purged));
        self.timeouts.add(std::mem::take(&mut self.d_timeouts));
        self.occupancy_hist.merge_plain(&mut self.occ);
        self.occupancy.set(len as f64);
        self.live_bytes.set(live_bytes as f64);
        let len = len as u64;
        let watermark = self.journal_cfg.occ_watermark();
        let high = len >= watermark;
        if self.last_occ != Some((len, high)) {
            self.last_occ = Some((len, high));
            self.journal.record(
                now,
                self.node,
                JournalKind::Occupancy {
                    len,
                    watermark,
                    high,
                },
            );
        }
    }
}

/// Endpoint-flush cadence for [`LfEndpointTele`] (power of two): deltas
/// accumulate endpoint-privately and drain to the registry shards every N
/// ops, so the lock-free hot path touches no shared cache line even for
/// its own counters. Bounded staleness ≤ N ops; `Drop` flushes the tail.
const LF_FLUSH: u64 = 64;

/// Per-endpoint telemetry for the lock-free queue (DESIGN.md §14): the
/// per-writer-shard replacement for [`BufTele`], which lives inside a
/// state mutex the lock-free path doesn't have. Each endpoint owns
/// private [`Counter`]/[`Histogram`] *shards* of the same series
/// (`Registry::counter` returns a fresh shard per call; snapshots sum
/// them), so two producers on one queue never share a telemetry cache
/// line. Deltas are plain integers flushed every [`LF_FLUSH`] ops — the
/// same publish-late discipline as `BufTele`, moved from the buffer to
/// the writer.
pub(crate) struct LfEndpointTele {
    ops: Counter,
    timeouts: Counter,
    occupancy_hist: Histogram,
    d_ops: u64,
    d_timeouts: u64,
    occ: Hist,
    seq: u64,
}

impl LfEndpointTele {
    /// Producer-side shard set (counts into `aru_channel_puts_total`).
    pub(crate) fn output(tele: &Telemetry, name: &str) -> Self {
        Self::new(tele, name, "aru_channel_puts_total")
    }

    /// Consumer-side shard set (counts into `aru_channel_gets_total`).
    pub(crate) fn input(tele: &Telemetry, name: &str) -> Self {
        Self::new(tele, name, "aru_channel_gets_total")
    }

    fn new(tele: &Telemetry, name: &str, ops_series: &str) -> Self {
        let r = &tele.registry;
        let labels: &[(&str, &str)] = &[("channel", name), ("kind", "lfqueue")];
        LfEndpointTele {
            ops: r.counter(ops_series, labels),
            timeouts: r.counter("aru_channel_timeouts_total", labels),
            occupancy_hist: r.histogram("aru_channel_occupancy", labels),
            d_ops: 0,
            d_timeouts: 0,
            occ: Hist::new(),
            seq: 0,
        }
    }

    /// `n` items moved through this endpoint; `len` is only evaluated on
    /// the 1-in-[`OCC_SAMPLE`] occupancy samples (it costs atomic loads
    /// on the lock-free queue).
    #[inline]
    pub(crate) fn on_op(&mut self, n: u64, len: impl FnOnce() -> usize) {
        self.d_ops += n;
        self.seq = self.seq.wrapping_add(1);
        if self.seq & (OCC_SAMPLE - 1) == 0 {
            self.occ.record(len() as u64);
        }
        if self.seq & (LF_FLUSH - 1) == 0 {
            self.flush();
        }
    }

    /// A blocking op hit its deadline.
    #[inline]
    pub(crate) fn on_timeout(&mut self) {
        self.d_timeouts += 1;
    }

    fn flush(&mut self) {
        self.ops.add(std::mem::take(&mut self.d_ops));
        self.timeouts.add(std::mem::take(&mut self.d_timeouts));
        self.occupancy_hist.merge_plain(&mut self.occ);
    }
}

impl Drop for LfEndpointTele {
    fn drop(&mut self) {
        self.flush();
    }
}

/// Per-task telemetry. Thread-private (lives in `TaskCtx`); records to the
/// registry's wait-free handles at iteration cadence and samples endpoint
/// op latency.
pub(crate) struct TaskTele {
    stp_current: Gauge,
    stp_summary: Gauge,
    iterations: Counter,
    pacing_taken: Counter,
    pacing_skipped: Counter,
    stale: Counter,
    pace_sleep_us: Counter,
    pace_raw_us: Gauge,
    pace_target_us: Gauge,
    law_fired: Counter,
    law_clamped: Counter,
    busy_us: Counter,
    blocked_us: Counter,
    put_ns: Histogram,
    get_ns: Histogram,
    // Meter totals already published, so each iteration adds the delta.
    prev_busy: Micros,
    prev_blocked: Micros,
    op_seq: u64,
    spans: SpanShard,
    last_fold: Option<Micros>,
    last_pace: Option<Micros>,
    // Flight-recorder journal: pace decisions at the law-fired gate,
    // staleness transitions, and fold hops.
    journal: JournalShard,
    law_code: u8,
    was_stale: bool,
}

impl TaskTele {
    pub(crate) fn new(tele: &Telemetry, name: &str, law: &'static str) -> Self {
        let r = &tele.registry;
        let labels: &[(&str, &str)] = &[("thread", name)];
        // Law-tagged series: which control law (DESIGN.md §13) drives this
        // task's pacing, and how often it fired / clamped the oracle.
        let law_labels: &[(&str, &str)] = &[("thread", name), ("law", law)];
        TaskTele {
            stp_current: r.gauge("aru_stp_current_us", labels),
            stp_summary: r.gauge("aru_stp_summary_us", labels),
            iterations: r.counter("aru_iterations_total", labels),
            pacing_taken: r.counter("aru_pacing_taken_total", labels),
            pacing_skipped: r.counter("aru_pacing_skipped_total", labels),
            stale: r.counter("aru_stale_summaries_total", labels),
            pace_sleep_us: r.counter("aru_pace_sleep_us_total", labels),
            pace_raw_us: r.gauge("aru_pace_raw_us", law_labels),
            pace_target_us: r.gauge("aru_pace_target_us", law_labels),
            law_fired: r.counter("aru_law_fired_total", law_labels),
            law_clamped: r.counter("aru_law_clamped_total", law_labels),
            busy_us: r.counter("aru_busy_us_total", labels),
            blocked_us: r.counter("aru_blocked_us_total", labels),
            put_ns: r.histogram("aru_put_latency_ns", labels),
            get_ns: r.histogram("aru_get_latency_ns", labels),
            prev_busy: Micros::ZERO,
            prev_blocked: Micros::ZERO,
            op_seq: 0,
            spans: tele.spans.shard(),
            last_fold: None,
            last_pace: None,
            journal: tele.journal.shard(),
            law_code: law_code(law),
            was_stale: false,
        }
    }

    /// Iteration finished: publish STP gauges, iteration/pacing/staleness
    /// counters, busy/blocked deltas, and (on summary change) a
    /// [`HopKind::Pace`] hop tying the pacing decision to the summary that
    /// drove it.
    pub(crate) fn on_iteration(
        &mut self,
        t: SimTime,
        node: NodeId,
        outcome: &aru_core::IterationOutcome,
        meter: &aru_core::StpMeter,
    ) {
        self.stp_current.set(outcome.current_stp.as_micros() as f64);
        if let Some(s) = outcome.summary {
            self.stp_summary.set(s.as_micros() as f64);
        }
        self.iterations.inc();
        if outcome.paced {
            self.pacing_taken.inc();
            self.pace_sleep_us.add(outcome.sleep.as_micros());
        } else {
            self.pacing_skipped.inc();
        }
        if outcome.stale {
            self.stale.inc();
        }
        // Journal staleness fallback transitions (enter/leave), not every
        // stale iteration — the storm detector wants edges, not area.
        if outcome.stale != self.was_stale {
            self.was_stale = outcome.stale;
            self.journal.record(
                t,
                node,
                JournalKind::Stale {
                    entered: outcome.stale,
                },
            );
        }
        if outcome.law_fired {
            self.law_fired.inc();
            if outcome.clamped {
                self.law_clamped.inc();
            }
            if let Some(raw) = outcome.raw_target {
                self.pace_raw_us.set(raw.as_micros() as f64);
            }
            if let Some(tg) = outcome.pace_target {
                self.pace_target_us.set(tg.as_micros() as f64);
            }
            // Same gate as the postmortem trace's PaceDecision event: the
            // law took a decision and both targets exist.
            if let (Some(raw), Some(target)) = (outcome.raw_target, outcome.pace_target) {
                self.journal.record(
                    t,
                    node,
                    JournalKind::Pace {
                        law: self.law_code,
                        raw: raw.period(),
                        target: target.period(),
                        sleep: outcome.sleep,
                        clamped: outcome.clamped,
                    },
                );
            }
        }
        let busy = meter.total_busy();
        let blocked = meter.total_blocked();
        // saturating: the meter restarts from zero after a crash recovery
        self.busy_us
            .add(busy.as_micros().saturating_sub(self.prev_busy.as_micros()));
        self.blocked_us.add(
            blocked
                .as_micros()
                .saturating_sub(self.prev_blocked.as_micros()),
        );
        self.prev_busy = busy;
        self.prev_blocked = blocked;
        if outcome.paced {
            if let Some(s) = outcome.summary {
                // The hop carries what the pacer actually applies — the
                // law's target when one is active, the raw summary otherwise.
                let value = outcome.pace_target.map_or(s.period(), |t| t.period());
                if self.last_pace != Some(value) {
                    self.last_pace = Some(value);
                    self.spans.record(FeedbackHop {
                        t,
                        kind: HopKind::Pace,
                        node,
                        peer: node,
                        value,
                        extra: outcome.sleep,
                    });
                }
            }
        }
    }

    /// A `put` returned a buffer's summary-STP and the task folded it into
    /// its controller — a [`HopKind::Fold`] hop, recorded on value change.
    #[inline]
    pub(crate) fn on_fold(&mut self, t: SimTime, node: NodeId, from: NodeId, value: Micros) {
        if self.last_fold == Some(value) {
            return;
        }
        self.last_fold = Some(value);
        self.spans.record(FeedbackHop {
            t,
            kind: HopKind::Fold,
            node,
            peer: from,
            value,
            extra: Micros::ZERO,
        });
        self.journal.record(
            t,
            node,
            JournalKind::Hop {
                leg: HopLeg::Fold,
                peer: from,
                value,
            },
        );
    }

    /// Sample gate for endpoint op latency: `Some(start)` for 1 in
    /// [`LAT_SAMPLE`] calls. Costs one increment + branch when not sampled.
    #[inline]
    pub(crate) fn op_sample(&mut self) -> Option<Instant> {
        self.op_seq = self.op_seq.wrapping_add(1);
        if self.op_seq & (LAT_SAMPLE - 1) == 0 {
            Some(Instant::now())
        } else {
            None
        }
    }

    #[inline]
    pub(crate) fn record_put_ns(&self, t0: Instant) {
        self.put_ns.record(t0.elapsed().as_nanos() as u64);
    }

    #[inline]
    pub(crate) fn record_get_ns(&self, t0: Instant) {
        self.get_ns.record(t0.elapsed().as_nanos() as u64);
    }

    /// After a crash the meter restarts from zero; resync the published
    /// baselines so the next iteration's delta is not wildly negative.
    pub(crate) fn on_recover(&mut self) {
        self.prev_busy = Micros::ZERO;
        self.prev_blocked = Micros::ZERO;
    }
}
