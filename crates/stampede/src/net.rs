//! Simulated interconnect for the threaded runtime.
//!
//! The paper's configuration 2 places tasks on five cluster nodes over
//! Gigabit Ethernet; a put into a remote channel becomes visible only after
//! the transfer. The threaded runtime runs on one machine, so
//! [`NetworkSim`] emulates the link: a remote put is handed to a delivery
//! thread that inserts the item into the destination channel after
//! `latency + bytes/bandwidth` — the same model as `desim::NetModel`.
//!
//! Backward feedback still flows: the channel's summary-STP returns with
//! the (simulated) ack, i.e. it is read at send time — matching the
//! one-hop-per-operation propagation of §3.3.2.

use crate::channel::Channel;
use crate::error::StampedeError;
use crate::item::ItemData;
use crate::sync::{Condvar, Mutex};
use crate::task::TaskCtx;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;
use std::time::Instant;
use vtime::{Micros, Timestamp};

#[cfg(loom)]
use loom::thread::JoinHandle;
#[cfg(not(loom))]
use std::thread::JoinHandle;

#[cfg(not(loom))]
fn spawn_worker(f: impl FnOnce() + Send + 'static) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name("network-sim".into())
        .spawn(f)
        .expect("spawn network sim")
}

#[cfg(loom)]
fn spawn_worker(f: impl FnOnce() + Send + 'static) -> JoinHandle<()> {
    loom::thread::spawn(f)
}

/// Link parameters (mirror of `desim::NetModel`, kept dependency-free).
#[derive(Debug, Clone, Copy)]
pub struct LinkModel {
    /// One-way message latency.
    pub latency: Micros,
    /// Payload bandwidth in bytes per microsecond (GbE ≈ 125).
    pub bandwidth_bytes_per_us: f64,
}

impl Default for LinkModel {
    /// Gigabit Ethernet with ~100 µs software latency.
    fn default() -> Self {
        LinkModel {
            latency: Micros(100),
            bandwidth_bytes_per_us: 125.0,
        }
    }
}

impl LinkModel {
    /// Transfer time for `bytes`.
    ///
    /// Serialization time rounds *up* to the next microsecond: any non-empty
    /// payload occupies the wire for at least 1 µs. Truncating instead would
    /// bill 0 µs for every payload smaller than the per-µs bandwidth
    /// (< ~125 bytes on GbE), letting small-message workloads transfer for
    /// free.
    #[must_use]
    pub fn transfer(&self, bytes: u64) -> Micros {
        let ser = if self.bandwidth_bytes_per_us.is_finite() && self.bandwidth_bytes_per_us > 0.0
        {
            Micros((bytes as f64 / self.bandwidth_bytes_per_us).ceil() as u64)
        } else {
            Micros::ZERO
        };
        self.latency + ser
    }
}

type Delivery = Box<dyn FnOnce() + Send>;

struct PendingDelivery {
    deadline: Instant,
    seq: u64,
    deliver: Delivery,
}

impl PartialEq for PendingDelivery {
    fn eq(&self, other: &Self) -> bool {
        self.deadline == other.deadline && self.seq == other.seq
    }
}
impl Eq for PendingDelivery {}
impl PartialOrd for PendingDelivery {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for PendingDelivery {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.deadline, self.seq).cmp(&(other.deadline, other.seq))
    }
}

struct NetState {
    queue: BinaryHeap<Reverse<PendingDelivery>>,
    seq: u64,
    stopped: bool,
}

/// Shared between the public handle and the delivery thread. The worker only
/// ever holds an `Arc<NetInner>` — never the `NetworkSim` itself — so
/// dropping the last `NetworkSim` handle can never happen on the worker
/// thread (which would make the `Drop`-triggered join a self-join).
struct NetInner {
    state: Mutex<NetState>,
    cond: Condvar,
}

impl NetInner {
    fn run(&self) {
        let mut st = self.state.lock();
        loop {
            if st.stopped {
                return;
            }
            let now = Instant::now();
            // Deliver everything due.
            while let Some(Reverse(head)) = st.queue.peek() {
                if head.deadline <= now {
                    let Reverse(p) = st.queue.pop().unwrap();
                    // run outside the lock so deliveries can't deadlock with
                    // senders
                    drop(st);
                    (p.deliver)();
                    st = self.state.lock();
                    if st.stopped {
                        return;
                    }
                } else {
                    break;
                }
            }
            if st.stopped {
                return;
            }
            match st.queue.peek() {
                Some(Reverse(head)) => {
                    let wait = head.deadline.saturating_duration_since(Instant::now());
                    self.cond.wait_for(&mut st, wait);
                }
                None => {
                    self.cond.wait(&mut st);
                }
            }
        }
    }
}

/// A delivery thread emulating network transfer delays.
///
/// Shutdown semantics: [`NetworkSim::stop`] marks the simulator stopped,
/// drops every *pending* (not yet due) delivery, and then **joins the
/// delivery thread**. When `stop()` returns, no delivery closure is running
/// or will ever run — callers may tear down channels the closures reference
/// without racing a late insert. Dropping the last handle stops the thread
/// the same way.
pub struct NetworkSim {
    inner: Arc<NetInner>,
    worker: Mutex<Option<JoinHandle<()>>>,
}

impl NetworkSim {
    /// Start the delivery thread. Returns the handle applications pass to
    /// [`RemoteOutput`]s; the thread stops when the handle is dropped or
    /// [`NetworkSim::stop`] is called.
    #[must_use]
    pub fn start() -> Arc<NetworkSim> {
        let inner = Arc::new(NetInner {
            state: Mutex::new(NetState {
                queue: BinaryHeap::new(),
                seq: 0,
                stopped: false,
            }),
            cond: Condvar::new(),
        });
        let worker_inner = Arc::clone(&inner);
        let handle = spawn_worker(move || worker_inner.run());
        Arc::new(NetworkSim {
            inner,
            worker: Mutex::new(Some(handle)),
        })
    }

    /// Schedule a delivery after `delay`.
    pub(crate) fn schedule(&self, delay: Micros, deliver: Delivery) {
        let mut st = self.inner.state.lock();
        if st.stopped {
            return;
        }
        st.seq += 1;
        let seq = st.seq;
        st.queue.push(Reverse(PendingDelivery {
            deadline: Instant::now() + std::time::Duration::from(delay),
            seq,
            deliver,
        }));
        drop(st);
        self.inner.cond.notify_all();
    }

    /// Number of in-flight deliveries.
    #[must_use]
    pub fn in_flight(&self) -> usize {
        self.inner.state.lock().queue.len()
    }

    /// Stop the delivery thread; pending deliveries are dropped (the run is
    /// over), then the thread is joined. A delivery that was already popped
    /// from the queue (i.e. running) completes before `stop()` returns.
    /// Idempotent; concurrent callers all observe the joined guarantee.
    pub fn stop(&self) {
        {
            let mut st = self.inner.state.lock();
            st.stopped = true;
            st.queue.clear();
        }
        self.inner.cond.notify_all();
        // Drain-then-join: take the handle under the worker lock so
        // concurrent stop() callers serialize here and every caller returns
        // only after the worker has exited.
        let handle = self.worker.lock().take();
        if let Some(h) = handle {
            #[cfg(not(loom))]
            if h.thread().id() == std::thread::current().id() {
                // Called from a delivery closure on the worker itself; the
                // stop flag is set, so the worker exits right after the
                // closure returns. Joining here would deadlock.
                return;
            }
            let _ = h.join();
        }
    }
}

impl Drop for NetworkSim {
    fn drop(&mut self) {
        self.stop();
    }
}

/// A producer endpoint whose puts cross a simulated link: the item becomes
/// visible in the channel after the transfer time. Wraps the endpoint
/// returned by `RuntimeBuilder::connect_out` via [`RemoteOutput::new`].
pub struct RemoteOutput<T: ItemData> {
    inner: crate::channel::Output<T>,
    net: Arc<NetworkSim>,
    link: LinkModel,
}

impl<T: ItemData> RemoteOutput<T> {
    /// Wrap a local endpoint with a link.
    #[must_use]
    pub fn new(inner: crate::channel::Output<T>, net: Arc<NetworkSim>, link: LinkModel) -> Self {
        RemoteOutput { inner, net, link }
    }

    /// Put across the link: the value is materialized now (it occupies the
    /// sender while in flight conceptually, though accounting attributes it
    /// to the destination channel at arrival) and becomes visible after the
    /// transfer time. The channel's current summary-STP returns immediately
    /// (piggybacked on the simulated ack).
    pub fn put(&self, ctx: &mut TaskCtx, ts: Timestamp, value: T) -> Result<(), StampedeError> {
        let bytes = value.size_bytes();
        let delay = self.link.transfer(bytes);
        let ch: Arc<Channel<T>> = Arc::clone(&self.inner.ch);
        // Feedback from the ack: the channel's summary right now.
        if let Some(stp) = ch.summary() {
            ctx.receive_feedback(self.inner.thread_out_index, stp);
        }
        // The item exists from the moment the sender materializes it; the
        // transfer only delays its *visibility* in the channel (this is
        // also what makes pipeline latency include the transfer).
        let id = ctx
            .trace()
            .alloc(ctx.now(), ch.node(), ts, bytes, ctx.iter_key());
        self.net.schedule(
            delay,
            Box::new(move || {
                ch.insert_prealloc(ts, value, id, bytes);
            }),
        );
        Ok(())
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::mpsc;
    use std::time::Duration;

    const RECV_DEADLINE: Duration = Duration::from_secs(10);

    #[test]
    fn link_transfer_times() {
        let l = LinkModel::default();
        assert_eq!(l.transfer(0), Micros(100));
        let t = l.transfer(738_000);
        assert!(t > Micros(5_000) && t < Micros(8_000));
    }

    #[test]
    fn sub_bandwidth_payloads_bill_at_least_one_microsecond() {
        let l = LinkModel::default(); // 125 bytes/µs
        assert_eq!(l.transfer(0), Micros(100)); // empty payload: latency only
        assert_eq!(l.transfer(1), Micros(101)); // not free
        assert_eq!(l.transfer(124), Micros(101)); // still under one µs of wire
        assert_eq!(l.transfer(125), Micros(101)); // exactly one µs
        assert_eq!(l.transfer(126), Micros(102)); // rounds up, not half-down
    }

    #[test]
    fn deliveries_happen_in_deadline_order() {
        // All three are enqueued (µs) long before the earliest deadline (ms),
        // so the heap alone dictates delivery order; the channel just tells
        // us when all three have fired. No sleeps, no timing assumptions.
        let net = NetworkSim::start();
        let (tx, rx) = mpsc::channel();
        for (delay_ms, tag) in [(6u64, 3), (2, 1), (4, 2)] {
            let tx = tx.clone();
            net.schedule(
                Micros::from_millis(delay_ms),
                Box::new(move || {
                    let _ = tx.send(tag);
                }),
            );
        }
        let order: Vec<i32> = (0..3)
            .map(|_| rx.recv_timeout(RECV_DEADLINE).expect("delivery fired"))
            .collect();
        assert_eq!(order, vec![1, 2, 3]);
        net.stop();
    }

    #[test]
    fn stop_drops_pending() {
        let net = NetworkSim::start();
        let hits = Arc::new(AtomicU64::new(0));
        let h = Arc::clone(&hits);
        net.schedule(
            Micros::from_secs(30),
            Box::new(move || {
                h.fetch_add(1, Ordering::Relaxed);
            }),
        );
        assert_eq!(net.in_flight(), 1);
        // stop() joins the worker, so after it returns the dropped delivery
        // can never fire — no grace-period sleep needed.
        net.stop();
        assert_eq!(net.in_flight(), 0);
        assert_eq!(hits.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn immediate_delivery_with_zero_delay() {
        let net = NetworkSim::start();
        let (tx, rx) = mpsc::channel();
        net.schedule(
            Micros::ZERO,
            Box::new(move || {
                let _ = tx.send(());
            }),
        );
        rx.recv_timeout(RECV_DEADLINE)
            .expect("zero-delay delivery fired");
        net.stop();
    }

    /// Regression test for the detached-thread shutdown race: the old
    /// `stop()` flipped the flag and returned without joining, so a delivery
    /// closure already popped from the queue could still be running (or
    /// about to run) while the caller tore down the channels it referenced.
    /// With drain-then-join this assertion is deterministic; against the old
    /// code it fails because `stop()` returns while the closure is mid-sleep.
    #[test]
    fn stop_waits_for_in_flight_delivery() {
        let net = NetworkSim::start();
        let (started_tx, started_rx) = mpsc::channel();
        let done = Arc::new(AtomicU64::new(0));
        let d = Arc::clone(&done);
        net.schedule(
            Micros::ZERO,
            Box::new(move || {
                let _ = started_tx.send(());
                std::thread::sleep(Duration::from_millis(50));
                d.fetch_add(1, Ordering::SeqCst);
            }),
        );
        // Wait until the closure is definitely running (popped, lock
        // released), then stop. stop() must not return before it finishes.
        started_rx.recv_timeout(RECV_DEADLINE).expect("delivery started");
        net.stop();
        assert_eq!(done.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn stop_is_idempotent_and_drop_safe() {
        let net = NetworkSim::start();
        net.stop();
        net.stop(); // second call finds no handle; must not hang or panic
        drop(net); // Drop calls stop() again
    }
}
