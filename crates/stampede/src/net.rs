//! Simulated interconnect for the threaded runtime.
//!
//! The paper's configuration 2 places tasks on five cluster nodes over
//! Gigabit Ethernet; a put into a remote channel becomes visible only after
//! the transfer. The threaded runtime runs on one machine, so
//! [`NetworkSim`] emulates the link: a remote put is handed to a delivery
//! thread that inserts the item into the destination channel after
//! `latency + bytes/bandwidth` — the same model as `desim::NetModel`.
//!
//! Backward feedback still flows: the channel's summary-STP returns with
//! the (simulated) ack, i.e. it is read at send time — matching the
//! one-hop-per-operation propagation of §3.3.2.

use crate::channel::Channel;
use crate::error::StampedeError;
use crate::item::ItemData;
use crate::task::TaskCtx;
use parking_lot::{Condvar, Mutex};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;
use std::time::Instant;
use vtime::{Micros, Timestamp};

/// Link parameters (mirror of `desim::NetModel`, kept dependency-free).
#[derive(Debug, Clone, Copy)]
pub struct LinkModel {
    /// One-way message latency.
    pub latency: Micros,
    /// Payload bandwidth in bytes per microsecond (GbE ≈ 125).
    pub bandwidth_bytes_per_us: f64,
}

impl Default for LinkModel {
    /// Gigabit Ethernet with ~100 µs software latency.
    fn default() -> Self {
        LinkModel {
            latency: Micros(100),
            bandwidth_bytes_per_us: 125.0,
        }
    }
}

impl LinkModel {
    /// Transfer time for `bytes`.
    #[must_use]
    pub fn transfer(&self, bytes: u64) -> Micros {
        let ser = if self.bandwidth_bytes_per_us.is_finite() && self.bandwidth_bytes_per_us > 0.0
        {
            Micros((bytes as f64 / self.bandwidth_bytes_per_us) as u64)
        } else {
            Micros::ZERO
        };
        self.latency + ser
    }
}

type Delivery = Box<dyn FnOnce() + Send>;

struct PendingDelivery {
    deadline: Instant,
    seq: u64,
    deliver: Delivery,
}

impl PartialEq for PendingDelivery {
    fn eq(&self, other: &Self) -> bool {
        self.deadline == other.deadline && self.seq == other.seq
    }
}
impl Eq for PendingDelivery {}
impl PartialOrd for PendingDelivery {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for PendingDelivery {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.deadline, self.seq).cmp(&(other.deadline, other.seq))
    }
}

struct NetState {
    queue: BinaryHeap<Reverse<PendingDelivery>>,
    seq: u64,
    stopped: bool,
}

/// A delivery thread emulating network transfer delays.
pub struct NetworkSim {
    state: Mutex<NetState>,
    cond: Condvar,
}

impl NetworkSim {
    /// Start the delivery thread. Returns the handle applications pass to
    /// [`RemoteOutput`]s; the thread stops when the handle is dropped or
    /// [`NetworkSim::stop`] is called.
    #[must_use]
    pub fn start() -> Arc<NetworkSim> {
        let net = Arc::new(NetworkSim {
            state: Mutex::new(NetState {
                queue: BinaryHeap::new(),
                seq: 0,
                stopped: false,
            }),
            cond: Condvar::new(),
        });
        let worker = Arc::clone(&net);
        std::thread::Builder::new()
            .name("network-sim".into())
            .spawn(move || worker.run())
            .expect("spawn network sim");
        net
    }

    fn run(&self) {
        let mut st = self.state.lock();
        loop {
            if st.stopped {
                return;
            }
            let now = Instant::now();
            // Deliver everything due.
            while let Some(Reverse(head)) = st.queue.peek() {
                if head.deadline <= now {
                    let Reverse(p) = st.queue.pop().unwrap();
                    // run outside the lock so deliveries can't deadlock with
                    // senders
                    drop(st);
                    (p.deliver)();
                    st = self.state.lock();
                } else {
                    break;
                }
            }
            if st.stopped {
                return;
            }
            match st.queue.peek() {
                Some(Reverse(head)) => {
                    let wait = head.deadline.saturating_duration_since(Instant::now());
                    self.cond.wait_for(&mut st, wait);
                }
                None => {
                    self.cond.wait(&mut st);
                }
            }
        }
    }

    /// Schedule a delivery after `delay`.
    pub(crate) fn schedule(&self, delay: Micros, deliver: Delivery) {
        let mut st = self.state.lock();
        if st.stopped {
            return;
        }
        st.seq += 1;
        let seq = st.seq;
        st.queue.push(Reverse(PendingDelivery {
            deadline: Instant::now() + std::time::Duration::from(delay),
            seq,
            deliver,
        }));
        drop(st);
        self.cond.notify_all();
    }

    /// Number of in-flight deliveries.
    #[must_use]
    pub fn in_flight(&self) -> usize {
        self.state.lock().queue.len()
    }

    /// Stop the delivery thread; pending deliveries are dropped (the run is
    /// over).
    pub fn stop(&self) {
        let mut st = self.state.lock();
        st.stopped = true;
        st.queue.clear();
        drop(st);
        self.cond.notify_all();
    }
}

/// A producer endpoint whose puts cross a simulated link: the item becomes
/// visible in the channel after the transfer time. Wraps the endpoint
/// returned by `RuntimeBuilder::connect_out` via [`RemoteOutput::new`].
pub struct RemoteOutput<T: ItemData> {
    inner: crate::channel::Output<T>,
    net: Arc<NetworkSim>,
    link: LinkModel,
}

impl<T: ItemData> RemoteOutput<T> {
    /// Wrap a local endpoint with a link.
    #[must_use]
    pub fn new(inner: crate::channel::Output<T>, net: Arc<NetworkSim>, link: LinkModel) -> Self {
        RemoteOutput { inner, net, link }
    }

    /// Put across the link: the value is materialized now (it occupies the
    /// sender while in flight conceptually, though accounting attributes it
    /// to the destination channel at arrival) and becomes visible after the
    /// transfer time. The channel's current summary-STP returns immediately
    /// (piggybacked on the simulated ack).
    pub fn put(&self, ctx: &mut TaskCtx, ts: Timestamp, value: T) -> Result<(), StampedeError> {
        let bytes = value.size_bytes();
        let delay = self.link.transfer(bytes);
        let ch: Arc<Channel<T>> = Arc::clone(&self.inner.ch);
        // Feedback from the ack: the channel's summary right now.
        if let Some(stp) = ch.summary() {
            ctx.receive_feedback(self.inner.thread_out_index, stp);
        }
        // The item exists from the moment the sender materializes it; the
        // transfer only delays its *visibility* in the channel (this is
        // also what makes pipeline latency include the transfer).
        let id = ctx
            .trace()
            .alloc(ctx.now(), ch.node(), ts, bytes, ctx.iter_key());
        self.net.schedule(
            delay,
            Box::new(move || {
                ch.insert_prealloc(ts, value, id, bytes);
            }),
        );
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::Duration;

    #[test]
    fn link_transfer_times() {
        let l = LinkModel::default();
        assert_eq!(l.transfer(0), Micros(100));
        let t = l.transfer(738_000);
        assert!(t > Micros(5_000) && t < Micros(8_000));
    }

    #[test]
    fn deliveries_happen_in_deadline_order() {
        let net = NetworkSim::start();
        let order = Arc::new(parking_lot::Mutex::new(Vec::new()));
        for (delay_ms, tag) in [(30u64, 3), (10, 1), (20, 2)] {
            let order = Arc::clone(&order);
            net.schedule(
                Micros::from_millis(delay_ms),
                Box::new(move || order.lock().push(tag)),
            );
        }
        std::thread::sleep(Duration::from_millis(80));
        assert_eq!(*order.lock(), vec![1, 2, 3]);
        net.stop();
    }

    #[test]
    fn stop_drops_pending() {
        let net = NetworkSim::start();
        let hits = Arc::new(AtomicU64::new(0));
        let h = Arc::clone(&hits);
        net.schedule(
            Micros::from_secs(30),
            Box::new(move || {
                h.fetch_add(1, Ordering::Relaxed);
            }),
        );
        assert_eq!(net.in_flight(), 1);
        net.stop();
        assert_eq!(net.in_flight(), 0);
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(hits.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn immediate_delivery_with_zero_delay() {
        let net = NetworkSim::start();
        let hits = Arc::new(AtomicU64::new(0));
        let h = Arc::clone(&hits);
        net.schedule(
            Micros::ZERO,
            Box::new(move || {
                h.fetch_add(1, Ordering::Relaxed);
            }),
        );
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(hits.load(Ordering::Relaxed), 1);
        net.stop();
    }
}
