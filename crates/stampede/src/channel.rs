//! Timestamped channels with get-latest semantics and ARU piggybacking.
//!
//! A channel stores `(timestamp, item)` pairs. Gets are *non-destructive*
//! (several consumers may read the same item) and *sparse in virtual time*:
//! a consumer asks for the **latest** item newer than anything it has seen,
//! skipping over stale items — the behaviour that creates the wasted
//! resources ARU eliminates.
//!
//! Feedback piggybacking (paper §3.3.2) happens exactly at the two buffer
//! operations:
//!
//! * on `get`, the consumer deposits its summary-STP into the channel's
//!   backward vector slot for that connection;
//! * on `put`, the channel's compressed summary-STP is handed back to the
//!   producer as the operation's return value.
//!
//! Reclamation: items below the channel's dead-before bound — the REF
//! consumption floor, raised further by the periodic DGC pass via
//! [`Channel::apply_dead_before`] — are purged when the bound *moves*
//! ([`Channel::release`] / [`Channel::apply_dead_before`], the only two
//! movers). Every other operation checks a purge watermark instead of
//! scanning: a `put`/`get` pays one timestamp compare, not a map walk.
//!
//! Hot-path notes: producer and consumer waiters sit on separate condvars,
//! so a `put` wakes only consumers and reclamation wakes only producers
//! blocked on a full bounded channel — no broadcast storms through
//! unrelated waiters. The summary-STP a `put` returns is the controller's
//! cached compression ([`AruController::summary`] is a field read;
//! recompression happens only when a consumer deposits feedback), so the
//! put path never recomputes the backward-vector compression.

use crate::error::StampedeError;
use crate::item::{ItemData, StampedItem};
use crate::seqlock::{decode_summary, encode_summary, SeqCell};
use crate::store::{ItemStore, Stored};
use crate::task::TaskCtx;
use crate::tele::BufTele;
use aru_core::{AruConfig, AruController, NodeKind, Stp};
use aru_gc::{ref_dead_before, ConsumerMarks, GcMode};
use aru_metrics::{ItemId, IterKey, LocalTrace, SharedTrace};
use crate::sync::{Condvar, Mutex, MutexGuard};
use std::sync::Arc;
use std::time::{Duration, Instant};
use vtime::{Clock, SimTime, Timestamp};

/// Wall-clock deadline for one blocking buffer operation, from the task's
/// configured op timeout (`None` = block forever).
pub(crate) fn op_deadline(ctx: &TaskCtx) -> Option<Instant> {
    ctx.op_timeout().map(|d| Instant::now() + Duration::from(d))
}

struct ChannelState<T> {
    items: ItemStore<T>,
    /// Buffered trace writer. Living inside the state mutex, it is written
    /// with `&mut` access on every op the channel already serializes —
    /// recording an event is a plain `Vec::push`, no second lock.
    trace: LocalTrace,
    marks: ConsumerMarks,
    aru: AruController,
    /// Highest dead-before bound received from the cross-graph DGC pass.
    dgc_dead_before: Timestamp,
    /// Purge watermark: everything below this is already reclaimed. The
    /// dead-before bound only moves in `release`/`apply_dead_before`, which
    /// purge immediately — so any op whose bound is at the watermark skips
    /// the purge with one compare.
    purged_before: Timestamp,
    /// Optional item-count bound: puts block while the channel is full
    /// (classic backpressure — the alternative to ARU this runtime lets
    /// you compare against; `None` reproduces Stampede's unbounded
    /// channels).
    capacity: Option<usize>,
    closed: bool,
    live_bytes: u64,
    /// Live-telemetry accumulator (DESIGN.md §12): plain counters and a
    /// sampled occupancy histogram, recorded under this mutex and drained
    /// to the shared registry only on exporter ticks.
    tele: BufTele,
    /// Last summary published to the lock-free cell (encoded) and the
    /// cell's generation counter — the change gate for republishing.
    published_summary: u64,
    summary_gen: u64,
}

/// A timestamped, multi-consumer, get-latest buffer.
pub struct Channel<T: ItemData> {
    node: aru_core::NodeId,
    name: String,
    gc_mode: GcMode,
    clock: Arc<dyn Clock>,
    state: Mutex<ChannelState<T>>,
    /// Consumers blocked in a get, waiting for data.
    cons: Condvar,
    /// Producers blocked in a bounded put, waiting for capacity.
    prod: Condvar,
    /// Lock-free read-side observables (DESIGN.md §14): `(len,
    /// live_bytes)` mirrored as one coherent seqlock pair at the end of
    /// every mutating locked section (two independent atomics would let a
    /// sampler pair a new `len` with stale `bytes`), plus the summary-STP
    /// behind its own seqlock. `len`/`live_bytes`/`summary` stay off the
    /// state lock unless the bounded seqlock retry keeps colliding with
    /// writers; monitors and exporters stop contending with the data
    /// path.
    obs_cell: SeqCell,
    summary_cell: SeqCell,
}

impl<T: ItemData> Channel<T> {
    /// Construct an unconnected channel. The builder calls
    /// [`Channel::configure_consumers`] once the topology is frozen.
    #[must_use]
    pub(crate) fn new(
        node: aru_core::NodeId,
        name: String,
        config: &AruConfig,
        gc_mode: GcMode,
        capacity: Option<usize>,
        clock: Arc<dyn Clock>,
        trace: SharedTrace,
    ) -> Self {
        let tele = BufTele::new(trace.telemetry(), "channel", &name, node);
        Channel {
            node,
            name,
            gc_mode,
            clock,
            state: Mutex::new(ChannelState {
                items: ItemStore::new(),
                trace: trace.local(),
                marks: ConsumerMarks::new(0),
                aru: AruController::new(NodeKind::Channel, 0, false, config),
                dgc_dead_before: Timestamp::ZERO,
                purged_before: Timestamp::ZERO,
                capacity,
                closed: false,
                live_bytes: 0,
                tele,
                published_summary: 0,
                summary_gen: 0,
            }),
            cons: Condvar::new(),
            prod: Condvar::new(),
            obs_cell: SeqCell::new(0, 0),
            summary_cell: SeqCell::new(0, 0),
        }
    }

    /// Mirror the occupancy observables into the lock-free cell as one
    /// coherent `(len, live_bytes)` pair. Called at the end of every
    /// locked section that moved items (the seqlock writer invariant:
    /// writers are serialized by the state mutex), so readers of
    /// [`Channel::len`]/[`Channel::live_bytes`] rarely touch the lock.
    fn publish_obs_locked(&self, st: &ChannelState<T>) {
        self.obs_cell.write(st.items.len() as u64, st.live_bytes);
    }

    /// Republish the summary seqlock cell when the controller's
    /// compression changed (callers hold the state mutex — the seqlock
    /// writer invariant).
    fn republish_summary_locked(&self, st: &mut ChannelState<T>) {
        let enc = encode_summary(st.aru.summary());
        if enc != st.published_summary {
            st.published_summary = enc;
            st.summary_gen += 1;
            self.summary_cell.write(st.summary_gen, enc);
        }
    }

    /// Shared deposit path for every get: fold the consumer's summary-STP
    /// into the channel controller, record the hop, republish the
    /// lock-free summary cell on change.
    fn deposit_locked(
        &self,
        st: &mut ChannelState<T>,
        chan_out_index: usize,
        ctx: &TaskCtx,
        now: SimTime,
    ) {
        if let Some(summary) = ctx.summary() {
            st.aru.receive_feedback(chan_out_index, summary);
            st.tele.on_deposit(ctx.node(), summary.period(), || now);
            self.republish_summary_locked(st);
        }
    }

    /// Pre-size the consumer bookkeeping to the channel's final out-degree.
    /// Must run before any operation: a consumer connection that has not yet
    /// consumed anything pins every timestamp, and the REF floor can only
    /// know that if the slot exists.
    pub(crate) fn configure_consumers(&self, n: usize) {
        let mut st = self.state.lock();
        st.marks = ConsumerMarks::new(n);
        st.purged_before = Timestamp::ZERO;
        st.aru.ensure_outputs(n);
        self.republish_summary_locked(&mut st);
        self.publish_obs_locked(&st);
    }

    #[must_use]
    pub fn node(&self) -> aru_core::NodeId {
        self.node
    }

    /// One reading of the channel's clock (the fan-out path shares it
    /// across every channel in the bundle).
    pub(crate) fn clock_now(&self) -> SimTime {
        self.clock.now()
    }

    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Insert an item at `ts`. Returns the channel's current summary-STP —
    /// the backward feedback the producer folds into its own state.
    ///
    /// A put at an existing timestamp replaces the item (the old one is
    /// freed); source threads issue monotonically increasing timestamps so
    /// this only happens in adversarial tests.
    ///
    /// Ignores any capacity bound (used internally and by tests); task code
    /// goes through [`Output::put`], which blocks on a full bounded channel.
    pub fn put(
        &self,
        ts: Timestamp,
        value: T,
        producer: IterKey,
    ) -> Result<Option<Stp>, StampedeError> {
        let bytes = value.size_bytes();
        let value = Arc::new(value);
        let now = self.clock.now();
        let mut st = self.state.lock();
        if st.closed {
            return Err(StampedeError::Closed);
        }
        self.insert_stored_locked(&mut st, now, producer, ts, value, bytes);
        // Cached compression: a field read, recomputed only on feedback.
        let summary = st.aru.summary();
        if let Some(s) = summary {
            st.tele.on_return(producer.node, s.period(), || now);
        }
        drop(st);
        // New data helps consumers only — a put never opens capacity.
        self.cons.notify_all();
        Ok(summary)
    }

    /// Record the alloc, insert (freeing any displaced item at the same
    /// timestamp), and apply the dead-on-arrival check. Shared by every
    /// put path; caller holds the state lock.
    fn insert_stored_locked(
        &self,
        st: &mut ChannelState<T>,
        now: SimTime,
        producer: IterKey,
        ts: Timestamp,
        value: Arc<T>,
        bytes: u64,
    ) {
        let id = st.trace.alloc(now, self.node, ts, bytes, producer);
        if let Some(old) = st.items.insert(ts, Stored { value, id, bytes }) {
            st.live_bytes -= old.bytes;
            st.trace.free(now, old.id);
        }
        st.live_bytes += bytes;
        self.reclaim_if_below_floor(st, ts, now);
        let len = st.items.len();
        st.tele.on_put(1, len);
        self.publish_obs_locked(st);
    }

    /// Batch insert under one lock hold: one clock read, one batched trace
    /// append, one wakeup. Caller holds the lock and has checked capacity.
    fn insert_batch_locked(
        &self,
        st: &mut ChannelState<T>,
        now: SimTime,
        producer: IterKey,
        prepared: Vec<(Timestamp, Arc<T>, u64)>,
    ) {
        // Ids first (batched append, identical assignment to a put loop),
        // then the inserts under a split borrow of the state.
        let mut ids = Vec::with_capacity(prepared.len());
        st.trace.put_n(
            now,
            self.node,
            producer,
            prepared.iter().map(|&(ts, _, bytes)| (ts, bytes)),
            |id| ids.push(id),
        );
        let reclaims = self.gc_mode.reclaims();
        let purged_before = st.purged_before;
        let n = prepared.len() as u64;
        let ChannelState {
            items,
            trace,
            live_bytes,
            tele,
            ..
        } = &mut *st;
        for ((ts, value, bytes), id) in prepared.into_iter().zip(ids) {
            if let Some(old) = items.insert(ts, Stored { value, id, bytes }) {
                *live_bytes -= old.bytes;
                trace.free(now, old.id);
            }
            *live_bytes += bytes;
            if reclaims && ts < purged_before {
                if let Some(stored) = items.remove(ts) {
                    *live_bytes -= stored.bytes;
                    trace.free(now, stored.id);
                }
            }
        }
        tele.on_put(n, items.len());
        self.publish_obs_locked(st);
    }

    /// Batch insert. The whole batch becomes visible atomically — the
    /// state lock is taken once, the clock read once, the trace appended
    /// once, and consumers woken once. Returns the channel's summary-STP
    /// (the same single backward hop a lone [`Channel::put`] performs), or
    /// `Ok(None)` without any side effect for an empty batch.
    ///
    /// Ignores any capacity bound, like [`Channel::put`]; task code goes
    /// through [`Output::put_batch`].
    pub fn put_batch(
        &self,
        producer: IterKey,
        batch: impl IntoIterator<Item = (Timestamp, T)>,
    ) -> Result<Option<Stp>, StampedeError> {
        let prepared = Self::prepare_batch(batch);
        if prepared.is_empty() {
            return Ok(None);
        }
        let now = self.clock.now();
        let mut st = self.state.lock();
        if st.closed {
            return Err(StampedeError::Closed);
        }
        self.insert_batch_locked(&mut st, now, producer, prepared);
        let summary = st.aru.summary();
        if let Some(s) = summary {
            st.tele.on_return(producer.node, s.period(), || now);
        }
        drop(st);
        self.cons.notify_all();
        Ok(summary)
    }

    /// Size and box the payloads outside the lock — the lock hold of a
    /// batch put covers only bookkeeping, never allocation of user data.
    fn prepare_batch(
        batch: impl IntoIterator<Item = (Timestamp, T)>,
    ) -> Vec<(Timestamp, Arc<T>, u64)> {
        batch
            .into_iter()
            .map(|(ts, value)| {
                let bytes = value.size_bytes();
                (ts, Arc::new(value), bytes)
            })
            .collect()
    }

    /// Capacity-aware batch insert (backpressure-compatible sibling of
    /// [`Channel::put_batch`]).
    ///
    /// Fast path: when the channel is unbounded or the whole batch fits,
    /// the batch is inserted atomically under one lock hold. Slow path
    /// (bounded channel without room): items are inserted one at a time,
    /// waiting for capacity between items — earlier items of the batch are
    /// visible to consumers while later ones wait, exactly as a loop of
    /// single puts would behave. A close during the slow path returns
    /// `Err(Closed)` with the already-inserted prefix retained (again
    /// matching the equivalent put loop).
    pub fn put_batch_blocking(
        &self,
        ctx: &mut TaskCtx,
        batch: impl IntoIterator<Item = (Timestamp, T)>,
    ) -> Result<Option<Stp>, StampedeError> {
        let prepared = Self::prepare_batch(batch);
        if prepared.is_empty() {
            return Ok(None);
        }
        let deadline = op_deadline(ctx);
        let now = self.clock.now();
        let mut st = self.state.lock();
        if st.closed {
            return Err(StampedeError::Closed);
        }
        let fits = match st.capacity {
            None => true,
            // Conservative: counts replacements as new items.
            Some(cap) => st.items.len() + prepared.len() <= cap,
        };
        if fits {
            self.insert_batch_locked(&mut st, now, ctx.iter_key(), prepared);
            let summary = st.aru.summary();
            if let Some(s) = summary {
                st.tele.on_return(ctx.node(), s.period(), || now);
            }
            drop(st);
            self.cons.notify_all();
            return Ok(summary);
        }
        // Slow path: per-item progress across capacity waits.
        let producer = ctx.iter_key();
        let mut blocked = false;
        for (ts, value, bytes) in prepared {
            loop {
                if st.closed {
                    if blocked {
                        ctx.block_end(self.clock.now());
                    }
                    return Err(StampedeError::Closed);
                }
                let full = st
                    .capacity
                    .is_some_and(|cap| st.items.len() >= cap && !st.items.contains(ts));
                if !full {
                    if blocked {
                        blocked = false;
                        ctx.block_end(self.clock.now());
                    }
                    let now = self.clock.now();
                    self.insert_stored_locked(&mut st, now, producer, ts, value, bytes);
                    self.cons.notify_all();
                    break;
                }
                if !blocked {
                    blocked = true;
                    ctx.block_begin(self.clock.now());
                }
                if self.wait_step(&self.prod, &mut st, deadline) {
                    return Err(self.timed_out(&mut st, ctx, blocked));
                }
            }
        }
        let summary = st.aru.summary();
        if let Some(s) = summary {
            st.tele.on_return(producer.node, s.period(), || self.clock.now());
        }
        Ok(summary)
    }

    /// Insert an already-shared payload (the fan-out path: N channels share
    /// one `Arc` instead of deep-cloning the frame N times). `now` is the
    /// fan-out's single clock read; if this channel makes the producer wait
    /// for capacity the clock is re-read after the wait so trace times stay
    /// monotone within the channel's event stream.
    pub(crate) fn put_arc_blocking(
        &self,
        ctx: &mut TaskCtx,
        now: SimTime,
        ts: Timestamp,
        value: Arc<T>,
        bytes: u64,
    ) -> Result<Option<Stp>, StampedeError> {
        let deadline = op_deadline(ctx);
        let mut st = self.state.lock();
        let mut blocked = false;
        let mut now = now;
        loop {
            if st.closed {
                if blocked {
                    ctx.block_end(self.clock.now());
                }
                return Err(StampedeError::Closed);
            }
            let full = st
                .capacity
                .is_some_and(|cap| st.items.len() >= cap && !st.items.contains(ts));
            if !full {
                if blocked {
                    ctx.block_end(self.clock.now());
                    now = self.clock.now();
                }
                self.insert_stored_locked(&mut st, now, ctx.iter_key(), ts, value, bytes);
                let summary = st.aru.summary();
                if let Some(s) = summary {
                    st.tele.on_return(ctx.node(), s.period(), || now);
                }
                drop(st);
                self.cons.notify_all();
                return Ok(summary);
            }
            if !blocked {
                blocked = true;
                ctx.block_begin(self.clock.now());
            }
            if self.wait_step(&self.prod, &mut st, deadline) {
                return Err(self.timed_out(&mut st, ctx, blocked));
            }
        }
    }

    /// Capacity-aware insert: blocks while a bounded channel is full
    /// (backpressure). The wait is recorded as blocking time, so it is
    /// excluded from the producer's current-STP just like waiting for
    /// upstream data.
    pub fn put_blocking(
        &self,
        ctx: &mut TaskCtx,
        ts: Timestamp,
        value: T,
    ) -> Result<Option<Stp>, StampedeError> {
        let deadline = op_deadline(ctx);
        let mut st = self.state.lock();
        let mut blocked = false;
        loop {
            if st.closed {
                if blocked {
                    ctx.block_end(self.clock.now());
                }
                return Err(StampedeError::Closed);
            }
            let full = st
                .capacity
                .is_some_and(|cap| st.items.len() >= cap && !st.items.contains(ts));
            if !full {
                if blocked {
                    ctx.block_end(self.clock.now());
                }
                let now = self.clock.now();
                let bytes = value.size_bytes();
                self.insert_stored_locked(&mut st, now, ctx.iter_key(), ts, Arc::new(value), bytes);
                let summary = st.aru.summary();
                if let Some(s) = summary {
                    st.tele.on_return(ctx.node(), s.period(), || now);
                }
                drop(st);
                self.cons.notify_all();
                return Ok(summary);
            }
            if !blocked {
                blocked = true;
                ctx.block_begin(self.clock.now());
            }
            if self.wait_step(&self.prod, &mut st, deadline) {
                return Err(self.timed_out(&mut st, ctx, blocked));
            }
        }
    }

    /// Retrieve the newest item with `ts >= floor` (the *consumer's* local
    /// freshness floor), blocking until one exists. `chan_out_index`
    /// identifies the consumer connection on the channel side. The
    /// consumer's summary-STP (from `ctx`) is deposited as backward
    /// feedback.
    ///
    /// Note that this does **not** advance the channel's GC marks: the
    /// consumer still holds the item while processing it, so the release
    /// happens at iteration end via [`Channel::release`] (Stampede's
    /// consume-on-iteration-end semantics) — the endpoint wrappers in
    /// [`Input`] arrange this automatically.
    pub fn get_latest(
        &self,
        chan_out_index: usize,
        ctx: &mut TaskCtx,
        floor: Timestamp,
    ) -> Result<StampedItem<T>, StampedeError> {
        let deadline = op_deadline(ctx);
        let mut st = self.state.lock();
        let mut blocked = false;
        loop {
            // The newest item with `ts >= floor` is the newest item overall
            // (when fresh enough) — an O(1) probe on the ring store.
            let found = st
                .items
                .latest()
                .filter(|&(ts, _)| ts >= floor)
                .map(|(ts, stored)| (ts, Arc::clone(&stored.value), stored.id));
            if let Some((ts, value, id)) = found {
                if blocked {
                    ctx.block_end(self.clock.now());
                }
                let now = self.clock.now();
                self.deposit_locked(&mut st, chan_out_index, ctx, now);
                let len = st.items.len();
                st.tele.on_get(1, len);
                st.trace.get(now, id, ctx.iter_key());
                return Ok(StampedItem { ts, value });
            }
            if st.closed {
                if blocked {
                    ctx.block_end(self.clock.now());
                }
                return Err(StampedeError::Closed);
            }
            if !blocked {
                blocked = true;
                ctx.block_begin(self.clock.now());
            }
            if self.wait_step(&self.cons, &mut st, deadline) {
                return Err(self.timed_out(&mut st, ctx, blocked));
            }
        }
    }

    /// Release this consumer connection's claim on everything up to and
    /// including `ts`: the channel mark advances and dead items may be
    /// reclaimed. Called at the end of the consuming iteration.
    pub fn release(&self, chan_out_index: usize, ts: Timestamp) {
        let mut st = self.state.lock();
        st.marks.advance(chan_out_index, ts);
        let removed = self.purge_locked(&mut st);
        drop(st);
        // Reclamation may have opened capacity for a blocked producer;
        // nothing new arrived, so consumers stay asleep.
        if removed > 0 {
            self.prod.notify_all();
        }
    }

    /// Join get: block until the item with exactly timestamp `ts` exists.
    /// Returns `Ok(None)` when the timestamp can no longer arrive (a newer
    /// item exists but `ts` does not — the frame was lost), letting the
    /// caller abandon the iteration.
    pub fn get_exact(
        &self,
        chan_out_index: usize,
        ctx: &mut TaskCtx,
        ts: Timestamp,
    ) -> Result<Option<StampedItem<T>>, StampedeError> {
        let deadline = op_deadline(ctx);
        let mut st = self.state.lock();
        let mut blocked = false;
        loop {
            if let Some(stored) = st.items.get(ts) {
                let (value, id) = (Arc::clone(&stored.value), stored.id);
                if blocked {
                    ctx.block_end(self.clock.now());
                }
                let now = self.clock.now();
                self.deposit_locked(&mut st, chan_out_index, ctx, now);
                let len = st.items.len();
                st.tele.on_get(1, len);
                st.trace.get(now, id, ctx.iter_key());
                return Ok(Some(StampedItem { ts, value }));
            }
            let newer_exists = st.items.latest().is_some_and(|(latest, _)| latest > ts);
            if newer_exists || st.closed {
                if blocked {
                    ctx.block_end(self.clock.now());
                }
                if st.closed && !newer_exists {
                    return Err(StampedeError::Closed);
                }
                return Ok(None);
            }
            if !blocked {
                blocked = true;
                ctx.block_begin(self.clock.now());
            }
            if self.wait_step(&self.cons, &mut st, deadline) {
                return Err(self.timed_out(&mut st, ctx, blocked));
            }
        }
    }

    /// Join get: block until the channel is non-empty, then return the
    /// newest item with timestamp at or before `ts` (falling back to the
    /// overall newest when everything is newer) — e.g. the freshest color
    /// model no newer than the frame being analyzed.
    pub fn get_latest_at_or_before(
        &self,
        chan_out_index: usize,
        ctx: &mut TaskCtx,
        ts: Timestamp,
    ) -> Result<StampedItem<T>, StampedeError> {
        let deadline = op_deadline(ctx);
        let mut st = self.state.lock();
        let mut blocked = false;
        loop {
            let found = st
                .items
                .latest_at_or_before(ts)
                .or_else(|| st.items.latest())
                .map(|(its, stored)| (its, Arc::clone(&stored.value), stored.id));
            if let Some((its, value, id)) = found {
                if blocked {
                    ctx.block_end(self.clock.now());
                }
                let now = self.clock.now();
                self.deposit_locked(&mut st, chan_out_index, ctx, now);
                let len = st.items.len();
                st.tele.on_get(1, len);
                st.trace.get(now, id, ctx.iter_key());
                return Ok(StampedItem { ts: its, value });
            }
            if st.closed {
                if blocked {
                    ctx.block_end(self.clock.now());
                }
                return Err(StampedeError::Closed);
            }
            if !blocked {
                blocked = true;
                ctx.block_begin(self.clock.now());
            }
            if self.wait_step(&self.cons, &mut st, deadline) {
                return Err(self.timed_out(&mut st, ctx, blocked));
            }
        }
    }

    /// Sliding-window get: block until at least one item with `ts >= floor`
    /// exists, then return the newest `n` items (oldest first). Supports
    /// the paper's motivating use case of "a gesture recognition module
    /// \[that\] may need to analyze a sliding window over a video stream".
    /// The window may span items older than `floor` (re-reading for context
    /// is the point of a sliding window); freshness is guaranteed only for
    /// the newest element.
    pub fn get_latest_window(
        &self,
        chan_out_index: usize,
        ctx: &mut TaskCtx,
        floor: Timestamp,
        n: usize,
    ) -> Result<Vec<StampedItem<T>>, StampedeError> {
        assert!(n > 0, "window must be non-empty");
        let deadline = op_deadline(ctx);
        let mut st = self.state.lock();
        let mut blocked = false;
        loop {
            let fresh = st.items.latest().is_some_and(|(ts, _)| ts >= floor);
            if fresh {
                if blocked {
                    ctx.block_end(self.clock.now());
                }
                let now = self.clock.now();
                self.deposit_locked(&mut st, chan_out_index, ctx, now);
                // Build the window directly (newest-first, then reverse) and
                // record the gets as one batched trace append — no per-item
                // `trace.get` calls, no intermediate picked Vec.
                let ChannelState { items, trace, tele, .. } = &mut *st;
                let mut window = Vec::with_capacity(n.min(items.len()));
                let mut ids = Vec::with_capacity(n.min(items.len()));
                items.for_each_newest(n, |ts, stored| {
                    window.push(StampedItem {
                        ts,
                        value: Arc::clone(&stored.value),
                    });
                    ids.push(stored.id);
                });
                tele.on_get(ids.len() as u64, items.len());
                trace.get_n(now, ctx.iter_key(), ids);
                window.reverse();
                return Ok(window);
            }
            if st.closed {
                if blocked {
                    ctx.block_end(self.clock.now());
                }
                return Err(StampedeError::Closed);
            }
            if !blocked {
                blocked = true;
                ctx.block_begin(self.clock.now());
            }
            if self.wait_step(&self.cons, &mut st, deadline) {
                return Err(self.timed_out(&mut st, ctx, blocked));
            }
        }
    }

    /// Non-blocking variant: `Ok(None)` when nothing at or above `floor`
    /// is available.
    pub fn try_get_latest(
        &self,
        chan_out_index: usize,
        ctx: &mut TaskCtx,
        floor: Timestamp,
    ) -> Result<Option<StampedItem<T>>, StampedeError> {
        let mut st = self.state.lock();
        let found = st
            .items
            .latest()
            .filter(|&(ts, _)| ts >= floor)
            .map(|(ts, stored)| (ts, Arc::clone(&stored.value), stored.id));
        match found {
            Some((ts, value, id)) => {
                let now = self.clock.now();
                self.deposit_locked(&mut st, chan_out_index, ctx, now);
                let len = st.items.len();
                st.tele.on_get(1, len);
                st.trace.get(now, id, ctx.iter_key());
                Ok(Some(StampedItem { ts, value }))
            }
            None if st.closed => Err(StampedeError::Closed),
            None => Ok(None),
        }
    }

    /// Insert an item whose allocation was already recorded (a remote put:
    /// the item existed — in flight — since the sender materialized it).
    /// If the channel closed while in flight, the item is freed instead.
    pub(crate) fn insert_prealloc(&self, ts: Timestamp, value: T, id: ItemId, bytes: u64) {
        let now = self.clock.now();
        let mut st = self.state.lock();
        if st.closed {
            st.trace.free(now, id);
            return;
        }
        if let Some(old) = st.items.insert(
            ts,
            Stored {
                value: Arc::new(value),
                id,
                bytes,
            },
        ) {
            st.live_bytes -= old.bytes;
            st.trace.free(now, old.id);
        }
        st.live_bytes += bytes;
        self.reclaim_if_below_floor(&mut st, ts, now);
        self.publish_obs_locked(&st);
        drop(st);
        self.cons.notify_all();
    }

    /// Drain-style batch get: block until at least one item with
    /// `ts >= floor` exists, then return every such item — oldest first, up
    /// to `max` — under a single lock hold, with one clock read, one
    /// summary-STP deposit, and one batched trace append for the whole
    /// batch. Reads stay non-destructive (release still happens per
    /// connection via [`Channel::release`]); "drain" refers to taking the
    /// entire fresh suffix in one op rather than one item per call.
    pub fn get_batch(
        &self,
        chan_out_index: usize,
        ctx: &mut TaskCtx,
        floor: Timestamp,
        max: usize,
    ) -> Result<Vec<StampedItem<T>>, StampedeError> {
        assert!(max > 0, "batch must be non-empty");
        let deadline = op_deadline(ctx);
        let mut st = self.state.lock();
        let mut blocked = false;
        loop {
            let fresh = st.items.latest().is_some_and(|(ts, _)| ts >= floor);
            if fresh {
                if blocked {
                    ctx.block_end(self.clock.now());
                }
                let now = self.clock.now();
                self.deposit_locked(&mut st, chan_out_index, ctx, now);
                let ChannelState { items, trace, tele, .. } = &mut *st;
                let mut batch = Vec::new();
                let mut ids = Vec::new();
                items.for_each_from(floor, max, |ts, stored| {
                    batch.push(StampedItem {
                        ts,
                        value: Arc::clone(&stored.value),
                    });
                    ids.push(stored.id);
                });
                tele.on_get(ids.len() as u64, items.len());
                trace.get_n(now, ctx.iter_key(), ids);
                return Ok(batch);
            }
            if st.closed {
                if blocked {
                    ctx.block_end(self.clock.now());
                }
                return Err(StampedeError::Closed);
            }
            if !blocked {
                blocked = true;
                ctx.block_begin(self.clock.now());
            }
            if self.wait_step(&self.cons, &mut st, deadline) {
                return Err(self.timed_out(&mut st, ctx, blocked));
            }
        }
    }

    fn dead_bound_locked(&self, st: &ChannelState<T>) -> Timestamp {
        match self.gc_mode {
            GcMode::None => Timestamp::ZERO,
            GcMode::Ref => ref_dead_before(&st.marks),
            GcMode::Dgc => ref_dead_before(&st.marks).max(st.dgc_dead_before),
        }
    }

    /// Dead-on-arrival check for the put paths: a put below the reclaimed
    /// floor (adversarial timestamps only — sources are monotone) is freed
    /// immediately, matching the eager per-op purge this watermark scheme
    /// replaced. One compare in the common case.
    fn reclaim_if_below_floor(&self, st: &mut ChannelState<T>, ts: Timestamp, now: vtime::SimTime) {
        if self.gc_mode.reclaims() && ts < st.purged_before {
            if let Some(stored) = st.items.remove(ts) {
                st.live_bytes -= stored.bytes;
                st.trace.free(now, stored.id);
            }
        }
    }

    /// Reclaim everything below the dead-before bound. Returns how many
    /// items were freed.
    ///
    /// Amortized by the purge watermark: the bound moves only in
    /// [`Channel::release`] / [`Channel::apply_dead_before`] (which purge
    /// right away), so every put/get-path call lands on the one-compare
    /// fast path. When the bound did move, the dead prefix is detached
    /// with a single `split_off` — O(log n + dead) instead of
    /// collect-keys-then-remove-each.
    fn purge_locked(&self, st: &mut ChannelState<T>) -> usize {
        if !self.gc_mode.reclaims() {
            return 0;
        }
        let bound = self.dead_bound_locked(st);
        if bound <= st.purged_before {
            return 0;
        }
        st.purged_before = bound;
        let now = self.clock.now();
        let mut removed = 0;
        let ChannelState {
            items,
            trace,
            live_bytes,
            ..
        } = &mut *st;
        items.purge_before(bound, |stored| {
            *live_bytes -= stored.bytes;
            trace.free(now, stored.id);
            removed += 1;
        });
        st.tele.on_purged(removed as u64);
        self.publish_obs_locked(st);
        removed
    }

    /// One bounded wait on the given wait set (consumers wait on `cons`,
    /// producers on `prod`); `true` means the op deadline passed before
    /// anything woke us.
    fn wait_step(
        &self,
        cond: &Condvar,
        st: &mut MutexGuard<'_, ChannelState<T>>,
        deadline: Option<Instant>,
    ) -> bool {
        match deadline {
            None => {
                cond.wait(st);
                false
            }
            Some(dl) => {
                let now = Instant::now();
                if now >= dl {
                    return true;
                }
                cond.wait_for(st, dl - now);
                false
            }
        }
    }

    /// Shared exit path for a blocking op that hit its deadline: end the
    /// blocking interval, record the timeout, hand back the error.
    fn timed_out(
        &self,
        st: &mut ChannelState<T>,
        ctx: &mut TaskCtx,
        blocked: bool,
    ) -> StampedeError {
        if blocked {
            ctx.block_end(self.clock.now());
        }
        st.tele.on_timeout();
        st.trace.op_timeout(self.clock.now(), ctx.node());
        StampedeError::Timeout
    }

    // ---- admin interface used by the runtime/GC driver ---------------------

    /// Snapshot of the per-consumer marks (for the cross-graph DGC pass).
    #[must_use]
    pub fn marks_snapshot(&self) -> ConsumerMarks {
        self.state.lock().marks.clone()
    }

    /// Raise the DGC dead-before bound (monotone) and purge.
    pub fn apply_dead_before(&self, bound: Timestamp) {
        let mut st = self.state.lock();
        if bound > st.dgc_dead_before {
            st.dgc_dead_before = bound;
            let removed = self.purge_locked(&mut st);
            drop(st);
            if removed > 0 {
                self.prod.notify_all();
            }
        }
    }

    /// Close the channel: all blocked and future gets/puts fail with
    /// [`StampedeError::Closed`]; remaining items are freed.
    pub fn close(&self) {
        let mut st = self.state.lock();
        if st.closed {
            return;
        }
        st.closed = true;
        let now = self.clock.now();
        let mut freed = Vec::with_capacity(st.items.len());
        st.items.drain(|stored| freed.push(stored.id));
        st.live_bytes = 0;
        st.trace.free_n(now, freed);
        self.publish_obs_locked(&st);
        drop(st);
        // Close unblocks everyone, whichever side they wait on.
        self.cons.notify_all();
        self.prod.notify_all();
    }

    /// The channel's current summary-STP (the value a put would return).
    /// Served from the seqlock cell — lock-free unless the bounded retry
    /// window keeps colliding with in-flight deposits, in which case the
    /// reader falls back to the state mutex (whose holder is the only
    /// possible writer).
    #[must_use]
    pub fn summary(&self) -> Option<Stp> {
        match self.summary_cell.try_read() {
            Some((_gen, enc)) => decode_summary(enc),
            None => self.state.lock().aru.summary(),
        }
    }

    /// Bytes currently held (lock-free mirror, exact at op boundaries).
    #[must_use]
    pub fn live_bytes(&self) -> u64 {
        self.occupancy().1
    }

    /// Items currently held (lock-free mirror, exact at op boundaries).
    #[must_use]
    pub fn len(&self) -> usize {
        self.occupancy().0
    }

    /// A coherent `(len, live_bytes)` snapshot: both values come from the
    /// same op boundary. Lock-free unless the bounded seqlock retry keeps
    /// colliding with in-flight ops, in which case the reader falls back
    /// to the state mutex (whose holder is the only possible writer).
    #[must_use]
    pub fn occupancy(&self) -> (usize, u64) {
        match self.obs_cell.try_read() {
            Some((len, bytes)) => (len as usize, bytes),
            None => {
                let st = self.state.lock();
                (st.items.len(), st.live_bytes)
            }
        }
    }

    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `(ring, spill)` occupancy of the hybrid item store — observability
    /// for tests and the hotpath bench. A dense in-order stream should keep
    /// the spill side at 0.
    #[must_use]
    pub fn store_depths(&self) -> (usize, usize) {
        self.state.lock().items.depths()
    }
}

/// Type-erased admin view the runtime's GC driver uses.
pub(crate) trait BufferAdmin: Send + Sync {
    fn node(&self) -> aru_core::NodeId;
    fn configure_consumers(&self, n: usize);
    fn marks_snapshot(&self) -> ConsumerMarks;
    fn apply_dead_before(&self, bound: Timestamp);
    fn close(&self);
    fn live_bytes(&self) -> u64;
    /// Publish any buffered trace events (the runtime calls this after
    /// joining the task threads, before it snapshots the trace).
    fn flush_trace(&self);
    /// Drain the buffer's telemetry accumulators into the shared metrics
    /// registry and refresh the occupancy gauges (exporter tick / stop).
    /// `now` stamps the journal's occupancy records — passed in because
    /// not every backend owns a clock (the lock-free ring does not).
    fn publish_telemetry(&self, now: SimTime);
}

impl<T: ItemData> BufferAdmin for Channel<T> {
    fn node(&self) -> aru_core::NodeId {
        Channel::node(self)
    }
    fn configure_consumers(&self, n: usize) {
        Channel::configure_consumers(self, n)
    }
    fn marks_snapshot(&self) -> ConsumerMarks {
        Channel::marks_snapshot(self)
    }
    fn apply_dead_before(&self, bound: Timestamp) {
        Channel::apply_dead_before(self, bound)
    }
    fn close(&self) {
        Channel::close(self)
    }
    fn live_bytes(&self) -> u64 {
        Channel::live_bytes(self)
    }
    fn flush_trace(&self) {
        self.state.lock().trace.flush();
    }
    fn publish_telemetry(&self, now: SimTime) {
        let mut st = self.state.lock();
        let len = st.items.len();
        let live = st.live_bytes;
        st.tele.publish(now, len, live);
    }
}

/// A typed producer endpoint: one thread→channel connection.
pub struct Output<T: ItemData> {
    pub(crate) ch: Arc<Channel<T>>,
    /// Slot in the *producing thread's* backward vector.
    pub(crate) thread_out_index: usize,
}

impl<T: ItemData> Output<T> {
    /// Put an item; folds the channel's returned summary-STP into the
    /// producing thread's ARU state (the backward propagation hop). Blocks
    /// while a bounded channel is full.
    pub fn put(&self, ctx: &mut TaskCtx, ts: Timestamp, value: T) -> Result<(), StampedeError> {
        let t0 = ctx.op_sample();
        let summary = self.ch.put_blocking(ctx, ts, value)?;
        if let Some(stp) = summary {
            ctx.receive_feedback_from(self.thread_out_index, stp, self.ch.node());
        }
        if let Some(t0) = t0 {
            ctx.record_put_ns(t0);
        }
        Ok(())
    }

    /// Batch put: the whole batch goes through one lock hold / clock read /
    /// trace append / consumer wakeup, and the channel's summary-STP is
    /// folded into the producing thread's ARU state once (see
    /// [`Channel::put_batch_blocking`] for the bounded-channel slow path).
    pub fn put_batch(
        &self,
        ctx: &mut TaskCtx,
        batch: impl IntoIterator<Item = (Timestamp, T)>,
    ) -> Result<(), StampedeError> {
        let t0 = ctx.op_sample();
        let summary = self.ch.put_batch_blocking(ctx, batch)?;
        if let Some(stp) = summary {
            ctx.receive_feedback_from(self.thread_out_index, stp, self.ch.node());
        }
        if let Some(t0) = t0 {
            ctx.record_put_ns(t0);
        }
        Ok(())
    }

    /// The channel this endpoint feeds.
    #[must_use]
    pub fn channel(&self) -> &Channel<T> {
        &self.ch
    }

    /// A shared handle to the channel (for monitoring outside the task).
    #[must_use]
    pub fn channel_arc(&self) -> Arc<Channel<T>> {
        Arc::clone(&self.ch)
    }
}

/// A typed consumer endpoint: one channel→thread connection.
///
/// The endpoint tracks its own freshness floor (the next timestamp it would
/// accept), and registers a deferred *release* with the task context on
/// every successful get: the channel's GC marks advance only when the
/// consuming iteration completes, because the task holds the item while
/// processing it.
pub struct Input<T: ItemData> {
    pub(crate) ch: Arc<Channel<T>>,
    /// This connection's index among the channel's outputs.
    pub(crate) chan_out_index: usize,
    /// Local freshness floor: next acceptable timestamp.
    pub(crate) floor: Timestamp,
}

impl<T: ItemData> Input<T> {
    fn took(&mut self, ctx: &mut TaskCtx, ts: Timestamp) {
        if ts.next() > self.floor {
            self.floor = ts.next();
        }
        let ch = Arc::clone(&self.ch);
        let idx = self.chan_out_index;
        ctx.defer_release(Box::new(move || ch.release(idx, ts)));
    }

    /// Blocking get-latest (see [`Channel::get_latest`]).
    pub fn get_latest(&mut self, ctx: &mut TaskCtx) -> Result<StampedItem<T>, StampedeError> {
        let t0 = ctx.op_sample();
        let item = self.ch.get_latest(self.chan_out_index, ctx, self.floor)?;
        if let Some(t0) = t0 {
            ctx.record_get_ns(t0);
        }
        self.took(ctx, item.ts);
        Ok(item)
    }

    /// Drain-style batch get (see [`Channel::get_batch`]): up to `max`
    /// fresh items, oldest first, in one buffer operation. The floor
    /// advances past the newest returned item and the whole batch is
    /// released together at iteration end.
    pub fn get_batch(
        &mut self,
        ctx: &mut TaskCtx,
        max: usize,
    ) -> Result<Vec<StampedItem<T>>, StampedeError> {
        let t0 = ctx.op_sample();
        let batch = self.ch.get_batch(self.chan_out_index, ctx, self.floor, max)?;
        if let Some(t0) = t0 {
            ctx.record_get_ns(t0);
        }
        let newest = batch.last().expect("batch is non-empty").ts;
        self.took(ctx, newest);
        Ok(batch)
    }

    /// Non-blocking get-latest.
    pub fn try_get_latest(
        &mut self,
        ctx: &mut TaskCtx,
    ) -> Result<Option<StampedItem<T>>, StampedeError> {
        match self.ch.try_get_latest(self.chan_out_index, ctx, self.floor)? {
            Some(item) => {
                self.took(ctx, item.ts);
                Ok(Some(item))
            }
            None => Ok(None),
        }
    }

    /// Blocking exact-timestamp join (see [`Channel::get_exact`]).
    pub fn get_exact(
        &mut self,
        ctx: &mut TaskCtx,
        ts: Timestamp,
    ) -> Result<Option<StampedItem<T>>, StampedeError> {
        match self.ch.get_exact(self.chan_out_index, ctx, ts)? {
            Some(item) => {
                self.took(ctx, item.ts);
                Ok(Some(item))
            }
            None => {
                // The join target is unattainable; release through `ts` so
                // GC is not pinned by a frame nobody will ever process.
                self.took(ctx, ts);
                Ok(None)
            }
        }
    }

    /// Blocking newest-at-or-before join (see
    /// [`Channel::get_latest_at_or_before`]).
    pub fn get_latest_at_or_before(
        &mut self,
        ctx: &mut TaskCtx,
        ts: Timestamp,
    ) -> Result<StampedItem<T>, StampedeError> {
        let item = self
            .ch
            .get_latest_at_or_before(self.chan_out_index, ctx, ts)?;
        self.took(ctx, item.ts);
        Ok(item)
    }

    /// Sliding-window get (see [`Channel::get_latest_window`]): blocks for
    /// freshness, returns up to `n` newest items oldest-first. Only the
    /// history the *next* window can no longer contain is released for GC,
    /// so consecutive windows overlap correctly.
    pub fn get_latest_window(
        &mut self,
        ctx: &mut TaskCtx,
        n: usize,
    ) -> Result<Vec<StampedItem<T>>, StampedeError> {
        let window = self
            .ch
            .get_latest_window(self.chan_out_index, ctx, self.floor, n)?;
        let newest = window.last().expect("window is non-empty").ts;
        if newest.next() > self.floor {
            self.floor = newest.next();
        }
        if window.len() == n {
            // The next window holds the n newest items and at least one new
            // one, so the current oldest can never be needed again.
            let release_ts = window[0].ts;
            let ch = Arc::clone(&self.ch);
            let idx = self.chan_out_index;
            ctx.defer_release(Box::new(move || ch.release(idx, release_ts)));
        }
        Ok(window)
    }

    /// The channel this endpoint reads.
    #[must_use]
    pub fn channel(&self) -> &Channel<T> {
        &self.ch
    }
}
