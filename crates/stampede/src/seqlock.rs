//! Seqlock cell for the compressed summary-STP (DESIGN.md §14).
//!
//! The control plane publishes a two-word payload (generation counter +
//! encoded summary) through a versioned even/odd counter so the data
//! plane reads it with two or three loads and no lock:
//!
//! * **Writer** (serialized externally — callers hold the buffer's
//!   control mutex, which is the documented invariant making the
//!   odd-version window single-writer): bump `version` to odd, store the
//!   payload words, bump to the next even value.
//! * **Reader**: load `version`; if even, load the payload and re-load
//!   `version`; identical before/after values mean the words are a
//!   coherent pair. Odd or changed means a write was in flight — retry.
//!
//! The payload words are themselves atomics, so a torn read is a
//! *coherence* problem (caught by the version check), never UB — no
//! `UnsafeCell`, nothing for Miri or TSan to object to.
//!
//! **Every access is `SeqCst`.** Release/acquire alone does not order the
//! reader's second version load after its payload loads without fences,
//! and the vendored loom stand-in models no fences; `SeqCst` makes the
//! protocol a textbook interleaving argument in loom's sequentially-
//! consistent model and costs nothing on the read side on x86 (a `SeqCst`
//! load compiles to a plain `mov`). The writer pays one fenced store per
//! *summary change* — the change-gated deposit path makes that rare.
//!
//! **Reads are bounded-optimistic.** `try_read` retries a handful of
//! times and then gives up, returning `None`; callers fall back to
//! locking the control mutex (whose holder is the only possible writer).
//! An unbounded spin would livelock under the loom scheduler, which may
//! never preempt a runnable thread — the mutex fallback gives the model
//! a blocking edge it can schedule through.

use crate::sync::atomic::{AtomicU64, Ordering};

/// Optimistic read attempts before a reader must fall back to the lock.
const MAX_READ_RETRIES: usize = 8;

/// Two-word seqlock cell. Word 0 is by convention a generation counter
/// (bumped per write), word 1 an encoded value; the cell itself is
/// payload-agnostic.
pub(crate) struct SeqCell {
    version: AtomicU64,
    words: [AtomicU64; 2],
}

impl SeqCell {
    pub(crate) fn new(w0: u64, w1: u64) -> Self {
        SeqCell {
            version: AtomicU64::new(0),
            words: [AtomicU64::new(w0), AtomicU64::new(w1)],
        }
    }

    /// Publish a new payload. **Callers must hold the owning buffer's
    /// control mutex** — that external serialization is what makes the
    /// odd-version window single-writer.
    pub(crate) fn write(&self, w0: u64, w1: u64) {
        let v = self.version.load(Ordering::SeqCst);
        debug_assert!(v.is_multiple_of(2), "seqlock writer saw an in-flight write; writers must hold the control mutex");
        self.version.store(v + 1, Ordering::SeqCst);
        self.words[0].store(w0, Ordering::SeqCst);
        self.words[1].store(w1, Ordering::SeqCst);
        self.version.store(v + 2, Ordering::SeqCst);
    }

    /// Bounded-optimistic coherent read. `None` after [`MAX_READ_RETRIES`]
    /// collisions with in-flight writes — fall back to the control mutex.
    pub(crate) fn try_read(&self) -> Option<(u64, u64)> {
        for _ in 0..MAX_READ_RETRIES {
            let v1 = self.version.load(Ordering::SeqCst);
            if !v1.is_multiple_of(2) {
                continue; // write in flight
            }
            let w0 = self.words[0].load(Ordering::SeqCst);
            let w1 = self.words[1].load(Ordering::SeqCst);
            if self.version.load(Ordering::SeqCst) == v1 {
                return Some((w0, w1));
            }
        }
        None
    }
}

/// Encode an optional summary period for a [`SeqCell`] word: `0` is
/// "no summary", otherwise micros + 1.
pub(crate) fn encode_summary(s: Option<aru_core::Stp>) -> u64 {
    match s {
        None => 0,
        Some(stp) => stp.as_micros() + 1,
    }
}

/// Inverse of [`encode_summary`].
pub(crate) fn decode_summary(w: u64) -> Option<aru_core::Stp> {
    if w == 0 {
        None
    } else {
        Some(aru_core::Stp::from_micros(w - 1))
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_round_trips() {
        let c = SeqCell::new(0, 0);
        assert_eq!(c.try_read(), Some((0, 0)));
        c.write(1, 42);
        assert_eq!(c.try_read(), Some((1, 42)));
    }

    #[test]
    fn summary_encoding_round_trips() {
        use aru_core::Stp;
        assert_eq!(decode_summary(encode_summary(None)), None);
        let s = Some(Stp::from_micros(0));
        assert_eq!(decode_summary(encode_summary(s)), s);
        let s = Some(Stp::from_micros(1_234_567));
        assert_eq!(decode_summary(encode_summary(s)), s);
    }

    #[test]
    fn concurrent_reads_never_see_a_torn_pair() {
        // Writer publishes (g, g * 3); readers must only ever observe
        // matched pairs.
        let c = std::sync::Arc::new(SeqCell::new(0, 0));
        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let mut readers = Vec::new();
        for _ in 0..3 {
            let c = std::sync::Arc::clone(&c);
            let stop = std::sync::Arc::clone(&stop);
            readers.push(std::thread::spawn(move || {
                let mut coherent = 0u64;
                loop {
                    if let Some((g, v)) = c.try_read() {
                        assert_eq!(v, g * 3, "torn read: ({g}, {v})");
                        coherent += 1;
                    }
                    // Checked after at least one read attempt: once the
                    // writer stops, the version is stable and the final
                    // try_read must succeed — the counter can't be zero.
                    if stop.load(std::sync::atomic::Ordering::Relaxed) {
                        break;
                    }
                }
                coherent
            }));
        }
        for g in 1..50_000u64 {
            c.write(g, g * 3);
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        for r in readers {
            assert!(r.join().unwrap() > 0, "reader never got a coherent pair");
        }
    }
}
