//! Pipeline construction.
//!
//! Mirrors Stampede's setup phase: create threads and channels/queues with
//! system-wide names, declare the connections between them (which is how the
//! runtime learns the task graph — ARU assumption 2), attach task bodies,
//! then freeze into a runnable [`crate::runtime::Runtime`].

use crate::backend::{QueueBackend, QueueInput, QueueOutput};
use crate::channel::{BufferAdmin, Channel, Input, Output};
use crate::error::TaskResult;
use crate::lfqueue::{LfQueue, LfQueueInput, LfQueueOutput};
use crate::queue::{MutexQueueInput, MutexQueueOutput, Queue};
use crate::runtime::Runtime;
use crate::task::TaskCtx;
use aru_core::graph::TopologyError;
use aru_core::{AruConfig, NodeId, RetryPolicy, Topology};
use aru_gc::GcMode;
use aru_metrics::{ExportSink, SharedTrace};
use std::any::Any;
use std::collections::HashMap;
use std::fmt;
use std::marker::PhantomData;
use std::sync::Arc;
use vtime::{Clock, Micros, WallClock};

use crate::item::ItemData;

/// Typed handle to a declared channel.
pub struct ChannelRef<T> {
    pub(crate) node: NodeId,
    _marker: PhantomData<fn() -> T>,
}

impl<T> Clone for ChannelRef<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for ChannelRef<T> {}

/// Typed handle to a declared queue.
pub struct QueueRef<T> {
    pub(crate) node: NodeId,
    _marker: PhantomData<fn() -> T>,
}

impl<T> Clone for QueueRef<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for QueueRef<T> {}

/// Handle to a declared task thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadRef(pub(crate) NodeId);

impl ThreadRef {
    /// The thread's node id in the task graph.
    #[must_use]
    pub fn node(self) -> NodeId {
        self.0
    }
}

/// Errors produced while building a pipeline.
#[derive(Debug)]
pub enum BuildError {
    /// Invalid connection (non-bipartite / unknown node / cycle).
    Topology(TopologyError),
    /// A declared thread has no body attached.
    MissingBody(String),
    /// `spawn` was called twice for the same thread.
    DuplicateBody(String),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::Topology(e) => write!(f, "topology error: {e}"),
            BuildError::MissingBody(n) => write!(f, "thread '{n}' has no body"),
            BuildError::DuplicateBody(n) => write!(f, "thread '{n}' spawned twice"),
        }
    }
}

impl std::error::Error for BuildError {}

impl From<TopologyError> for BuildError {
    fn from(e: TopologyError) -> Self {
        BuildError::Topology(e)
    }
}

type Body = Box<dyn FnMut(&mut TaskCtx) -> TaskResult + Send>;

/// Builder for a threaded pipeline.
pub struct RuntimeBuilder {
    topo: Topology,
    config: AruConfig,
    gc_mode: GcMode,
    gc_interval: Micros,
    clock: Arc<dyn Clock>,
    trace: SharedTrace,
    buffers: HashMap<NodeId, Arc<dyn Any + Send + Sync>>,
    admins: Vec<Arc<dyn BufferAdmin>>,
    /// Default backend for queues declared via [`RuntimeBuilder::queue`].
    queue_backend: QueueBackend,
    /// Which backend each declared queue node actually got (so the
    /// connect calls construct the matching endpoint).
    queue_backends: HashMap<NodeId, QueueBackend>,
    bodies: HashMap<NodeId, Body>,
    retry: RetryPolicy,
    op_timeout: Option<Micros>,
    export: Option<(ExportSink, Micros)>,
    journal_path: Option<std::path::PathBuf>,
}

impl RuntimeBuilder {
    /// Start building a pipeline with the given ARU configuration and GC
    /// mode (applied uniformly, as in the paper's experiments).
    #[must_use]
    pub fn new(config: AruConfig, gc_mode: GcMode) -> Self {
        RuntimeBuilder {
            topo: Topology::new(),
            config,
            gc_mode,
            gc_interval: Micros::from_millis(2),
            clock: Arc::new(WallClock::new()),
            trace: SharedTrace::new(),
            buffers: HashMap::new(),
            admins: Vec::new(),
            queue_backend: QueueBackend::default(),
            queue_backends: HashMap::new(),
            bodies: HashMap::new(),
            retry: RetryPolicy::none(),
            op_timeout: None,
            export: None,
            journal_path: None,
        }
    }

    /// Override the clock (tests inject a [`vtime::ManualClock`]).
    #[must_use]
    pub fn with_clock(mut self, clock: Arc<dyn Clock>) -> Self {
        self.clock = clock;
        self
    }

    /// How often the DGC driver recomputes cross-graph guarantees.
    #[must_use]
    pub fn with_gc_interval(mut self, interval: Micros) -> Self {
        self.gc_interval = interval;
        self
    }

    /// Supervised-restart policy applied to every task thread: a panicking
    /// body is caught and restarted up to the policy's budget, then the
    /// runtime escalates to a clean shutdown. The default is
    /// [`RetryPolicy::none`] — first crash stops the pipeline.
    #[must_use]
    pub fn with_retry_policy(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Deadline applied to every blocking channel/queue operation: a get or
    /// bounded put that blocks longer than `timeout` fails with
    /// [`crate::error::StampedeError::Timeout`] instead of waiting forever
    /// (e.g. on a producer that crashed and is backing off before restart).
    #[must_use]
    pub fn with_op_timeout(mut self, timeout: Micros) -> Self {
        self.op_timeout = Some(timeout);
        self
    }

    /// Enable the periodic telemetry exporter: every `interval` of wall
    /// time a supervised runtime thread drains each buffer's telemetry
    /// accumulators into the shared metrics registry, snapshots it, and
    /// writes the snapshot through `sink` (Prometheus text rewritten
    /// atomically, JSONL appended). A final snapshot is flushed on
    /// shutdown — including the escalation path, so a crashed run still
    /// leaves telemetry (plus a `fault_report` JSONL line) behind.
    #[must_use]
    pub fn with_export(mut self, sink: ExportSink, interval: Micros) -> Self {
        self.export = Some((sink, interval));
        self
    }

    /// Persist the flight-recorder journal (DESIGN.md §16) to `path` as
    /// JSONL: a snapshot is cut on clean stop, and a crash dump is written
    /// to the `<path>.crash.jsonl` sibling when a supervisor exhausts its
    /// restart budget and escalates. Both writes are atomic (tmp + rename).
    #[must_use]
    pub fn with_journal(mut self, path: impl Into<std::path::PathBuf>) -> Self {
        self.journal_path = Some(path.into());
        self
    }

    /// The live-telemetry bundle (metrics registry + feedback-loop spans)
    /// every buffer and task context of this pipeline reports into. Clone
    /// it before `build()` to watch gauges live or snapshot after the run.
    #[must_use]
    pub fn telemetry(&self) -> &aru_metrics::Telemetry {
        self.trace.telemetry()
    }

    /// Declare an unbounded channel (Stampede semantics).
    pub fn channel<T: ItemData>(&mut self, name: impl Into<String>) -> ChannelRef<T> {
        self.channel_inner(name, None)
    }

    /// Declare a bounded channel: puts block while `capacity` items are
    /// held (classic backpressure — provided so applications can compare
    /// blocking producers against ARU's pacing).
    pub fn channel_with_capacity<T: ItemData>(
        &mut self,
        name: impl Into<String>,
        capacity: usize,
    ) -> ChannelRef<T> {
        assert!(capacity > 0, "capacity must be positive");
        self.channel_inner(name, Some(capacity))
    }

    fn channel_inner<T: ItemData>(
        &mut self,
        name: impl Into<String>,
        capacity: Option<usize>,
    ) -> ChannelRef<T> {
        let name = name.into();
        let node = self.topo.add_channel(name.clone());
        let ch = Arc::new(Channel::<T>::new(
            node,
            name,
            &self.config,
            self.gc_mode,
            capacity,
            Arc::clone(&self.clock),
            self.trace.clone(),
        ));
        self.admins.push(Arc::clone(&ch) as Arc<dyn BufferAdmin>);
        self.buffers.insert(node, ch as Arc<dyn Any + Send + Sync>);
        ChannelRef {
            node,
            _marker: PhantomData,
        }
    }

    /// Default backend for queues declared after this call (per-queue
    /// override: [`RuntimeBuilder::queue_with_backend`]). The mutex
    /// backend is the default; `QueueBackend::lock_free()` routes the
    /// graph's FIFO edges over the bounded MPMC ring.
    #[must_use]
    pub fn with_queue_backend(mut self, backend: QueueBackend) -> Self {
        self.queue_backend = backend;
        self
    }

    /// Declare a queue on the builder's current default backend.
    pub fn queue<T: ItemData>(&mut self, name: impl Into<String>) -> QueueRef<T> {
        self.queue_with_backend(name, self.queue_backend)
    }

    /// Declare a queue on an explicit backend (mixed-backend graphs are
    /// fine — each queue node records its own choice).
    pub fn queue_with_backend<T: ItemData>(
        &mut self,
        name: impl Into<String>,
        backend: QueueBackend,
    ) -> QueueRef<T> {
        let name = name.into();
        let node = self.topo.add_queue(name.clone());
        match backend {
            QueueBackend::Mutex => {
                let q = Arc::new(Queue::<T>::new(
                    node,
                    name,
                    &self.config,
                    Arc::clone(&self.clock),
                    self.trace.clone(),
                ));
                self.admins.push(Arc::clone(&q) as Arc<dyn BufferAdmin>);
                self.buffers.insert(node, q as Arc<dyn Any + Send + Sync>);
            }
            QueueBackend::LockFree { capacity } => {
                assert!(capacity > 0, "lock-free queue capacity must be positive");
                let q = Arc::new(LfQueue::<T>::new(
                    node,
                    name,
                    &self.config,
                    capacity,
                    self.trace.clone(),
                ));
                self.admins.push(Arc::clone(&q) as Arc<dyn BufferAdmin>);
                self.buffers.insert(node, q as Arc<dyn Any + Send + Sync>);
            }
        }
        self.queue_backends.insert(node, backend);
        QueueRef {
            node,
            _marker: PhantomData,
        }
    }

    /// Declare a task thread.
    pub fn thread(&mut self, name: impl Into<String>) -> ThreadRef {
        ThreadRef(self.topo.add_thread(name))
    }

    fn channel_arc<T: ItemData>(&self, r: &ChannelRef<T>) -> Arc<Channel<T>> {
        Arc::clone(self.buffers.get(&r.node).expect("channel registered"))
            .downcast::<Channel<T>>()
            .expect("channel type")
    }

    fn queue_arc<T: ItemData>(&self, r: &QueueRef<T>) -> Arc<Queue<T>> {
        Arc::clone(self.buffers.get(&r.node).expect("queue registered"))
            .downcast::<Queue<T>>()
            .expect("queue type")
    }

    fn lfqueue_arc<T: ItemData>(&self, r: &QueueRef<T>) -> Arc<LfQueue<T>> {
        Arc::clone(self.buffers.get(&r.node).expect("queue registered"))
            .downcast::<LfQueue<T>>()
            .expect("queue type")
    }

    fn queue_backend_of<T>(&self, r: &QueueRef<T>) -> QueueBackend {
        *self
            .queue_backends
            .get(&r.node)
            .expect("queue backend recorded at declaration")
    }

    /// Connect a thread's output to a channel; returns the producer
    /// endpoint to capture in the thread body.
    pub fn connect_out<T: ItemData>(
        &mut self,
        th: ThreadRef,
        ch: &ChannelRef<T>,
    ) -> Result<Output<T>, BuildError> {
        let edge = self.topo.connect(th.0, ch.node)?;
        let out_index = self.topo.edge(edge).out_index;
        Ok(Output {
            ch: self.channel_arc(ch),
            thread_out_index: out_index,
        })
    }

    /// Connect a channel to a consuming thread; returns the consumer
    /// endpoint to capture in the thread body.
    pub fn connect_in<T: ItemData>(
        &mut self,
        ch: &ChannelRef<T>,
        th: ThreadRef,
    ) -> Result<Input<T>, BuildError> {
        let edge = self.topo.connect(ch.node, th.0)?;
        let out_index = self.topo.edge(edge).out_index;
        Ok(Input {
            ch: self.channel_arc(ch),
            chan_out_index: out_index,
            floor: vtime::Timestamp::ZERO,
        })
    }

    /// Connect a thread's output to a queue; the endpoint matches the
    /// backend the queue was declared on.
    pub fn connect_queue_out<T: ItemData>(
        &mut self,
        th: ThreadRef,
        q: &QueueRef<T>,
    ) -> Result<QueueOutput<T>, BuildError> {
        let edge = self.topo.connect(th.0, q.node)?;
        let out_index = self.topo.edge(edge).out_index;
        Ok(match self.queue_backend_of(q) {
            QueueBackend::Mutex => QueueOutput::from_mutex(MutexQueueOutput {
                q: self.queue_arc(q),
                thread_out_index: out_index,
            }),
            QueueBackend::LockFree { .. } => {
                QueueOutput::from_lock_free(LfQueueOutput::new(self.lfqueue_arc(q), out_index))
            }
        })
    }

    /// Connect a queue to a consuming thread.
    pub fn connect_queue_in<T: ItemData>(
        &mut self,
        q: &QueueRef<T>,
        th: ThreadRef,
    ) -> Result<QueueInput<T>, BuildError> {
        let edge = self.topo.connect(q.node, th.0)?;
        let out_index = self.topo.edge(edge).out_index;
        Ok(match self.queue_backend_of(q) {
            QueueBackend::Mutex => QueueInput::from_mutex(MutexQueueInput {
                q: self.queue_arc(q),
                chan_out_index: out_index,
            }),
            QueueBackend::LockFree { .. } => {
                QueueInput::from_lock_free(LfQueueInput::new(self.lfqueue_arc(q), out_index))
            }
        })
    }

    /// Attach the task body for a thread.
    pub fn spawn<F>(&mut self, th: ThreadRef, body: F)
    where
        F: FnMut(&mut TaskCtx) -> TaskResult + Send + 'static,
    {
        let prev = self.bodies.insert(th.0, Box::new(body));
        assert!(
            prev.is_none(),
            "thread {} spawned twice",
            self.topo.name(th.0)
        );
    }

    /// The task graph built so far (for rendering / inspection).
    #[must_use]
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Freeze the pipeline into a runnable [`Runtime`].
    pub fn build(mut self) -> Result<Runtime, BuildError> {
        self.topo.validate()?;
        // Every declared thread needs a body.
        for n in self.topo.node_ids() {
            if self.topo.kind(n).is_thread() && !self.bodies.contains_key(&n) {
                return Err(BuildError::MissingBody(self.topo.name(n).to_string()));
            }
        }
        // Pre-size buffer consumer bookkeeping to the final out-degrees.
        for admin in &self.admins {
            admin.configure_consumers(self.topo.out_degree(admin.node()));
        }
        let bodies = std::mem::take(&mut self.bodies);
        let tasks = self
            .topo
            .node_ids()
            .filter(|&n| self.topo.kind(n).is_thread())
            .map(|n| (n, self.topo.name(n).to_string()))
            .collect();
        Ok(Runtime::new(
            self.topo,
            self.config,
            self.gc_mode,
            self.gc_interval,
            self.clock,
            self.trace,
            self.admins,
            tasks,
            bodies,
            self.retry,
            self.op_timeout,
            self.export,
            self.journal_path,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::Step;

    #[test]
    fn build_rejects_missing_body() {
        let mut b = RuntimeBuilder::new(AruConfig::aru_min(), GcMode::Dgc);
        let _ch = b.channel::<Vec<u8>>("c");
        let _t = b.thread("lonely");
        let err = match b.build() {
            Err(e) => e,
            Ok(_) => panic!("build must fail"),
        };
        assert!(matches!(err, BuildError::MissingBody(n) if n == "lonely"));
    }

    #[test]
    fn build_rejects_bad_connection() {
        let mut b = RuntimeBuilder::new(AruConfig::aru_min(), GcMode::Dgc);
        let t1 = b.thread("a");
        let t2 = b.thread("b");
        // thread->thread is impossible through the typed API; simulate the
        // topology error by connecting a channel to a channel via refs.
        let c1 = b.channel::<Vec<u8>>("c1");
        let _c2 = b.channel::<Vec<u8>>("c2");
        let r = b.connect_in(&c1, t1);
        assert!(r.is_ok());
        let r2 = b.connect_out(t2, &c1);
        assert!(r2.is_ok());
        // duplicate spawn panics
        b.spawn(t1, |_| Ok(Step::Stop));
        let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            b.spawn(t1, |_| Ok(Step::Stop));
        }));
        assert!(res.is_err());
    }

    #[test]
    fn topology_is_exposed() {
        let mut b = RuntimeBuilder::new(AruConfig::aru_min(), GcMode::Dgc);
        let t = b.thread("src");
        let c = b.channel::<Vec<u8>>("ch");
        b.connect_out(t, &c).unwrap();
        assert_eq!(b.topology().node_count(), 2);
        assert_eq!(b.topology().edge_count(), 1);
    }
}
