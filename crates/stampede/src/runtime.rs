//! The running pipeline: thread spawning, the DGC driver, shutdown, and
//! run reports.

use crate::channel::BufferAdmin;
use crate::error::TaskResult;
use crate::shutdown::Shutdown;
use crate::task::TaskCtx;
use aru_core::{AruConfig, NodeId, Topology};
use aru_gc::{ConsumerMarks, DgcEngine, DgcResult, GcMode, IdealGc};
use aru_metrics::{
    FootprintReport, Lineage, PerfReport, SharedTrace, Trace, TraceEvent, WasteReport,
};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;
use std::thread::JoinHandle;
use vtime::{Clock, Micros, SimTime};

type Body = Box<dyn FnMut(&mut TaskCtx) -> TaskResult + Send>;

/// A frozen, ready-to-run pipeline (produced by
/// [`RuntimeBuilder::build`](crate::builder::RuntimeBuilder::build)).
pub struct Runtime {
    topo: Topology,
    config: AruConfig,
    gc_mode: GcMode,
    gc_interval: Micros,
    clock: Arc<dyn Clock>,
    trace: SharedTrace,
    admins: Vec<Arc<dyn BufferAdmin>>,
    tasks: Vec<(NodeId, String)>,
    bodies: HashMap<NodeId, Body>,
}

impl Runtime {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        topo: Topology,
        config: AruConfig,
        gc_mode: GcMode,
        gc_interval: Micros,
        clock: Arc<dyn Clock>,
        trace: SharedTrace,
        admins: Vec<Arc<dyn BufferAdmin>>,
        tasks: Vec<(NodeId, String)>,
        bodies: HashMap<NodeId, Body>,
    ) -> Self {
        Runtime {
            topo,
            config,
            gc_mode,
            gc_interval,
            clock,
            trace,
            admins,
            tasks,
            bodies,
        }
    }

    /// The frozen task graph.
    #[must_use]
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Start every task thread (plus the DGC driver when the GC mode calls
    /// for it) and return a handle for stopping the run.
    #[must_use]
    pub fn start(mut self) -> Running {
        let shutdown = Shutdown::new();
        let dgc_shared = Arc::new(RwLock::new(DgcResult::default()));

        let mut handles = Vec::with_capacity(self.tasks.len());
        for (node, name) in &self.tasks {
            let body = self.bodies.remove(node).expect("validated at build");
            let ctx = TaskCtx::new(
                *node,
                name.clone(),
                self.topo.out_degree(*node),
                self.topo.in_degree(*node) == 0,
                &self.config,
                Arc::clone(&self.clock),
                self.trace.clone(),
                shutdown.clone(),
                Arc::clone(&dgc_shared),
            );
            let handle = std::thread::Builder::new()
                .name(name.clone())
                .spawn(move || ctx.run(body))
                .expect("spawn task thread");
            handles.push(handle);
        }

        let gc_handle = if self.gc_mode == GcMode::Dgc {
            let engine = DgcEngine::new(&self.topo);
            let topo = self.topo.clone();
            let admins: Vec<Arc<dyn BufferAdmin>> = self.admins.clone();
            let sd = shutdown.clone();
            let shared = Arc::clone(&dgc_shared);
            let interval = self.gc_interval;
            Some(
                std::thread::Builder::new()
                    .name("dgc-driver".into())
                    .spawn(move || loop {
                        if sd.is_set() {
                            break;
                        }
                        let marks: HashMap<NodeId, ConsumerMarks> = admins
                            .iter()
                            .map(|a| (a.node(), a.marks_snapshot()))
                            .collect();
                        let result = engine.compute(&topo, &marks);
                        for a in &admins {
                            a.apply_dead_before(result.buffer_dead_before(a.node()));
                        }
                        *shared.write() = result;
                        if sd.sleep(interval) {
                            break;
                        }
                    })
                    .expect("spawn dgc driver"),
            )
        } else {
            None
        };

        Running {
            topo: self.topo,
            clock: self.clock,
            trace: self.trace,
            admins: self.admins,
            shutdown,
            handles,
            gc_handle,
        }
    }

    /// Convenience: start, run for `duration` of wall time, stop, report.
    pub fn run_for(self, duration: Micros) -> Result<RunReport, BoxedJoinError> {
        let running = self.start();
        std::thread::sleep(duration.into());
        running.stop()
    }
}

/// Error carrying a panicked task's name.
#[derive(Debug)]
pub struct BoxedJoinError(pub String);

impl std::fmt::Display for BoxedJoinError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "task thread panicked: {}", self.0)
    }
}

impl std::error::Error for BoxedJoinError {}

/// A started pipeline.
pub struct Running {
    topo: Topology,
    clock: Arc<dyn Clock>,
    trace: SharedTrace,
    admins: Vec<Arc<dyn BufferAdmin>>,
    shutdown: Shutdown,
    handles: Vec<JoinHandle<u64>>,
    gc_handle: Option<JoinHandle<()>>,
}

impl Running {
    /// Request shutdown, close every buffer (waking blocked getters), join
    /// all threads, and produce the run report.
    pub fn stop(self) -> Result<RunReport, BoxedJoinError> {
        self.shutdown.set();
        for a in &self.admins {
            a.close();
        }
        for h in self.handles {
            let name = h.thread().name().unwrap_or("<task>").to_string();
            h.join().map_err(|_| BoxedJoinError(name))?;
        }
        if let Some(h) = self.gc_handle {
            h.join().map_err(|_| BoxedJoinError("dgc-driver".into()))?;
        }
        let t_end = self.clock.now();
        Ok(RunReport {
            trace: self.trace.snapshot(),
            topo: self.topo,
            t_end,
        })
    }

    /// Is the pipeline still running (i.e. shutdown not yet requested)?
    #[must_use]
    pub fn is_running(&self) -> bool {
        !self.shutdown.is_set()
    }

    /// Bytes currently held across all buffers — a live view of the
    /// application memory footprint.
    #[must_use]
    pub fn live_bytes(&self) -> u64 {
        self.admins.iter().map(|a| a.live_bytes()).sum()
    }
}

/// Everything recorded during one run, plus the postmortem analyses.
#[derive(Debug, Clone)]
pub struct RunReport {
    pub trace: Trace,
    pub topo: Topology,
    pub t_end: SimTime,
}

impl RunReport {
    /// Number of sink outputs (frames that made it through the pipeline).
    #[must_use]
    pub fn outputs(&self) -> usize {
        self.trace
            .events()
            .iter()
            .filter(|e| matches!(e, TraceEvent::SinkOutput { .. }))
            .count()
    }

    /// Per-thread execution statistics (named via the stored topology with
    /// [`aru_metrics::thread_stats::render_thread_stats`]).
    #[must_use]
    pub fn thread_stats(
        &self,
    ) -> std::collections::BTreeMap<NodeId, aru_metrics::ThreadStats> {
        let lineage = Lineage::analyze(&self.trace);
        aru_metrics::thread_stats(&self.trace, &lineage)
    }

    /// Per-channel occupancy statistics.
    #[must_use]
    pub fn channel_stats(
        &self,
    ) -> std::collections::BTreeMap<NodeId, aru_metrics::ChannelStats> {
        aru_metrics::channel_stats(&self.trace, self.t_end)
    }

    /// Run the full postmortem suite.
    #[must_use]
    pub fn analyze(&self) -> RunAnalysis {
        let lineage = Lineage::analyze(&self.trace);
        let footprint = FootprintReport::compute(&self.trace, &lineage, self.t_end);
        let waste = WasteReport::compute(&lineage, self.t_end);
        let perf = PerfReport::compute(&self.trace, &lineage, self.t_end);
        let igc = IdealGc::from_lineage(&lineage, self.t_end);
        RunAnalysis {
            footprint,
            waste,
            perf,
            igc,
        }
    }
}

/// Bundled postmortem results for one run.
#[derive(Debug, Clone)]
pub struct RunAnalysis {
    pub footprint: FootprintReport,
    pub waste: WasteReport,
    pub perf: PerfReport,
    pub igc: IdealGc,
}
