//! The running pipeline: thread spawning, the DGC driver, shutdown, and
//! run reports.

use crate::channel::BufferAdmin;
use crate::error::TaskResult;
use crate::shutdown::Shutdown;
use crate::task::TaskCtx;
use aru_core::{AruConfig, NodeId, RetryPolicy, Topology};
use aru_gc::{ConsumerMarks, DgcEngine, DgcResult, GcMode, IdealGc};
use aru_metrics::export::fault_report_jsonl;
use aru_metrics::trace::wall_clock_unix_us;
use aru_metrics::{
    ExportSink, FaultReport, FootprintReport, JournalKind, Lineage, PerfReport, SharedTrace,
    Telemetry, Trace, TraceEvent, WasteReport,
};
use crate::sync::RwLock;
use std::any::Any;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::Arc;
use std::thread::JoinHandle;
use vtime::{Clock, Micros, SimTime};

type Body = Box<dyn FnMut(&mut TaskCtx) -> TaskResult + Send>;

/// Render a panic payload (the `Box<dyn Any>` from `catch_unwind`/`join`)
/// as best we can: panics raised via `panic!("…")` carry a `String` or
/// `&'static str`.
fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// One exporter tick: drain every buffer's telemetry accumulators into the
/// shared registry, snapshot it coherently, and write the snapshot through
/// the sink. IO errors are swallowed — a full disk must not take down the
/// pipeline being observed.
fn export_tick(
    admins: &[Arc<dyn BufferAdmin>],
    telemetry: &Telemetry,
    sink: &ExportSink,
    epoch: u64,
    now: SimTime,
) {
    for a in admins {
        a.publish_telemetry(now);
    }
    let snap = telemetry.registry.snapshot();
    let _ = sink.write_snapshot(&snap, epoch, wall_clock_unix_us());
}

/// A frozen, ready-to-run pipeline (produced by
/// [`RuntimeBuilder::build`](crate::builder::RuntimeBuilder::build)).
pub struct Runtime {
    topo: Topology,
    config: AruConfig,
    gc_mode: GcMode,
    gc_interval: Micros,
    clock: Arc<dyn Clock>,
    trace: SharedTrace,
    admins: Vec<Arc<dyn BufferAdmin>>,
    tasks: Vec<(NodeId, String)>,
    bodies: HashMap<NodeId, Body>,
    retry: RetryPolicy,
    op_timeout: Option<Micros>,
    export: Option<(ExportSink, Micros)>,
    journal_path: Option<PathBuf>,
}

impl Runtime {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        topo: Topology,
        config: AruConfig,
        gc_mode: GcMode,
        gc_interval: Micros,
        clock: Arc<dyn Clock>,
        trace: SharedTrace,
        admins: Vec<Arc<dyn BufferAdmin>>,
        tasks: Vec<(NodeId, String)>,
        bodies: HashMap<NodeId, Body>,
        retry: RetryPolicy,
        op_timeout: Option<Micros>,
        export: Option<(ExportSink, Micros)>,
        journal_path: Option<PathBuf>,
    ) -> Self {
        Runtime {
            topo,
            config,
            gc_mode,
            gc_interval,
            clock,
            trace,
            admins,
            tasks,
            bodies,
            retry,
            op_timeout,
            export,
            journal_path,
        }
    }

    /// The frozen task graph.
    #[must_use]
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The pipeline's live-telemetry bundle (shared with every buffer and
    /// task context).
    #[must_use]
    pub fn telemetry(&self) -> &Telemetry {
        self.trace.telemetry()
    }

    /// Start every task thread (plus the DGC driver when the GC mode calls
    /// for it) and return a handle for stopping the run.
    #[must_use]
    pub fn start(mut self) -> Running {
        let shutdown = Shutdown::new();
        let dgc_shared = Arc::new(RwLock::new(DgcResult::default()));

        let mut handles = Vec::with_capacity(self.tasks.len());
        for (node, name) in &self.tasks {
            let mut body = self.bodies.remove(node).expect("validated at build");
            let mut ctx = TaskCtx::new(
                *node,
                name.clone(),
                self.topo.out_degree(*node),
                self.topo.in_degree(*node) == 0,
                &self.config,
                Arc::clone(&self.clock),
                self.trace.clone(),
                shutdown.clone(),
                Arc::clone(&dgc_shared),
            );
            ctx.set_op_timeout(self.op_timeout);
            let node = *node;
            let policy = self.retry;
            let clock = Arc::clone(&self.clock);
            let trace = self.trace.clone();
            let sd = shutdown.clone();
            let admins: Vec<Arc<dyn BufferAdmin>> = self.admins.clone();
            let journal = self.trace.telemetry().journal.clone();
            let crash_path = self
                .journal_path
                .as_ref()
                .map(|p| p.with_extension("crash.jsonl"));
            let epoch = self.trace.epoch_unix_us();
            // Supervisor loop: a panicking body is caught, the context is
            // recovered and the loop re-entered under the retry policy;
            // when the restart budget is exhausted the supervisor escalates
            // to a clean runtime-wide shutdown (buffers closed so peers
            // unblock and drain).
            let handle = std::thread::Builder::new()
                .name(name.clone())
                .spawn(move || {
                    // Per-task journal shard: the supervisor is this
                    // thread's only writer, honoring the shard's
                    // single-writer contract.
                    let jshard = journal.shard();
                    let mut attempt: u32 = 0;
                    loop {
                        match catch_unwind(AssertUnwindSafe(|| ctx.run(&mut *body))) {
                            Ok(iters) => return Ok(iters),
                            Err(payload) => {
                                attempt += 1;
                                let msg = panic_message(payload.as_ref());
                                trace.task_crash(clock.now(), node, attempt);
                                jshard.record(clock.now(), node, JournalKind::Crash { attempt });
                                if sd.is_set() {
                                    return Err(msg);
                                }
                                if policy.allows(attempt) {
                                    let backoff = policy.delay(attempt);
                                    ctx.recover();
                                    trace.task_restart(clock.now(), node, attempt, backoff);
                                    jshard.record(
                                        clock.now(),
                                        node,
                                        JournalKind::Restart { attempt, backoff },
                                    );
                                    if sd.sleep(backoff) {
                                        return Err(msg);
                                    }
                                } else {
                                    jshard.record(
                                        clock.now(),
                                        node,
                                        JournalKind::Escalate { attempt },
                                    );
                                    // Black-box crash dump: cut the journal
                                    // snapshot *now*, before shutdown tears
                                    // the pipeline down — the postmortem
                                    // artifact survives even if the clean
                                    // stop path never runs. Atomic write
                                    // (tmp + rename); IO errors swallowed
                                    // like the exporter's.
                                    if let Some(p) = &crash_path {
                                        let _ =
                                            journal.write_snapshot_file(p, "threaded", epoch);
                                    }
                                    sd.set();
                                    for a in &admins {
                                        a.close();
                                    }
                                    return Err(msg);
                                }
                            }
                        }
                    }
                })
                .expect("spawn task thread");
            handles.push(handle);
        }

        let gc_handle = if self.gc_mode == GcMode::Dgc {
            let engine = DgcEngine::new(&self.topo);
            let topo = self.topo.clone();
            let admins: Vec<Arc<dyn BufferAdmin>> = self.admins.clone();
            let sd = shutdown.clone();
            let shared = Arc::clone(&dgc_shared);
            let interval = self.gc_interval;
            Some(
                std::thread::Builder::new()
                    .name("dgc-driver".into())
                    .spawn(move || {
                        // Fixed cadence: the next deadline advances by the
                        // interval from the previous one, so a slow GC pass
                        // shrinks the following sleep instead of pushing
                        // the whole schedule out.
                        let mut next_tick = std::time::Instant::now();
                        loop {
                            if sd.is_set() {
                                break;
                            }
                            let marks: HashMap<NodeId, ConsumerMarks> = admins
                                .iter()
                                .map(|a| (a.node(), a.marks_snapshot()))
                                .collect();
                            let result = engine.compute(&topo, &marks);
                            for a in &admins {
                                a.apply_dead_before(result.buffer_dead_before(a.node()));
                            }
                            *shared.write() = result;
                            next_tick += std::time::Duration::from(interval);
                            if sd.sleep_until(next_tick) {
                                break;
                            }
                        }
                    })
                    .expect("spawn dgc driver"),
            )
        } else {
            None
        };

        let export_handle = self.export.take().map(|(sink, interval)| {
            let admins: Vec<Arc<dyn BufferAdmin>> = self.admins.clone();
            let telemetry = self.trace.telemetry().clone();
            let trace = self.trace.clone();
            let epoch = self.trace.epoch_unix_us();
            let sd = shutdown.clone();
            let clock = Arc::clone(&self.clock);
            std::thread::Builder::new()
                .name("telemetry-exporter".into())
                .spawn(move || {
                    // Supervised like the task threads, with a fixed
                    // budget: a panicking tick must never take the
                    // observed pipeline down, but an exporter that panics
                    // on every tick is abandoned rather than hot-looped.
                    // Fixed-cadence deadlines (`next_tick += interval`)
                    // keep the export schedule drift-free when a tick is
                    // slow, and `sleep_until` wakes on shutdown so the
                    // final flush below never waits out a poll interval.
                    let mut failures: u32 = 0;
                    let mut next_tick = std::time::Instant::now();
                    while !sd.is_set() && failures < 3 {
                        if catch_unwind(AssertUnwindSafe(|| {
                            export_tick(&admins, &telemetry, &sink, epoch, clock.now());
                        }))
                        .is_err()
                        {
                            failures += 1;
                        }
                        next_tick += std::time::Duration::from(interval);
                        if sd.sleep_until(next_tick) {
                            break;
                        }
                    }
                    // Final flush on the way out — runs on clean stop AND
                    // on supervisor escalation, so a crashed run still
                    // leaves its last snapshot behind. A run that recorded
                    // faults additionally appends the fault report as a
                    // JSONL line next to the snapshots.
                    let _ = catch_unwind(AssertUnwindSafe(|| {
                        export_tick(&admins, &telemetry, &sink, epoch, clock.now());
                        let faults = FaultReport::compute(&trace.snapshot());
                        if faults.any() {
                            let line =
                                fault_report_jsonl(&faults, epoch, wall_clock_unix_us());
                            let _ = sink.append_jsonl(&line);
                        }
                    }));
                })
                .expect("spawn telemetry exporter")
        });

        Running {
            topo: self.topo,
            clock: self.clock,
            trace: self.trace,
            admins: self.admins,
            shutdown,
            handles,
            gc_handle,
            export_handle,
            journal_path: self.journal_path,
        }
    }

    /// Convenience: start, run for `duration` of wall time, stop, report.
    pub fn run_for(self, duration: Micros) -> Result<RunReport, BoxedJoinError> {
        let running = self.start();
        std::thread::sleep(duration.into());
        running.stop()
    }
}

/// A task failed permanently: the supervisor exhausted its restart budget
/// (or the thread died outside the supervised loop). Carries the failing
/// task's name and the panic payload, rendered to a string.
#[derive(Debug)]
pub struct BoxedJoinError {
    /// Name of the task (thread) that failed.
    pub task: String,
    /// The panic message that killed it.
    pub payload: String,
}

impl std::fmt::Display for BoxedJoinError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "task '{}' failed permanently: {}", self.task, self.payload)
    }
}

impl std::error::Error for BoxedJoinError {}

/// A started pipeline.
pub struct Running {
    topo: Topology,
    clock: Arc<dyn Clock>,
    trace: SharedTrace,
    admins: Vec<Arc<dyn BufferAdmin>>,
    shutdown: Shutdown,
    handles: Vec<JoinHandle<Result<u64, String>>>,
    gc_handle: Option<JoinHandle<()>>,
    export_handle: Option<JoinHandle<()>>,
    journal_path: Option<PathBuf>,
}

impl Running {
    /// Request shutdown, close every buffer (waking blocked getters), join
    /// all threads, and produce the run report.
    ///
    /// Returns [`BoxedJoinError`] — task name plus the preserved panic
    /// payload — when any supervised task failed permanently during the
    /// run.
    pub fn stop(self) -> Result<RunReport, BoxedJoinError> {
        self.shutdown.set();
        for a in &self.admins {
            a.close();
        }
        for h in self.handles {
            let name = h.thread().name().unwrap_or("<task>").to_string();
            match h.join() {
                Ok(Ok(_iters)) => {}
                Ok(Err(payload)) => return Err(BoxedJoinError { task: name, payload }),
                // The supervisor itself panicked (shouldn't happen): the
                // join error is the raw payload.
                Err(p) => {
                    return Err(BoxedJoinError {
                        task: name,
                        payload: panic_message(p.as_ref()),
                    })
                }
            }
        }
        if let Some(h) = self.gc_handle {
            h.join().map_err(|p| BoxedJoinError {
                task: "dgc-driver".into(),
                payload: panic_message(p.as_ref()),
            })?;
        }
        if let Some(h) = self.export_handle {
            h.join().map_err(|p| BoxedJoinError {
                task: "telemetry-exporter".into(),
                payload: panic_message(p.as_ref()),
            })?;
        }
        let t_end = self.clock.now();
        // Task threads are joined; publish each buffer's pending trace
        // events and telemetry accumulators before the snapshot (the
        // latter so registry reads after `stop` see final totals even
        // when no exporter was configured).
        for a in &self.admins {
            a.flush_trace();
            a.publish_telemetry(t_end);
        }
        // Clean-stop flight-recorder snapshot (after the flush/publish
        // loop, so the journal holds the final occupancy records). IO
        // errors are swallowed — persistence must not fail the stop.
        if let Some(p) = &self.journal_path {
            let _ = self.trace.telemetry().journal.write_snapshot_file(
                p,
                "threaded",
                self.trace.epoch_unix_us(),
            );
        }
        Ok(RunReport {
            trace: self.trace.snapshot(),
            topo: self.topo,
            t_end,
        })
    }

    /// The live-telemetry bundle — read gauges and span rings while the
    /// run is in flight (the watch mode does exactly this).
    #[must_use]
    pub fn telemetry(&self) -> &aru_metrics::Telemetry {
        self.trace.telemetry()
    }

    /// Is the pipeline still running (i.e. shutdown not yet requested)?
    #[must_use]
    pub fn is_running(&self) -> bool {
        !self.shutdown.is_set()
    }

    /// Bytes currently held across all buffers — a live view of the
    /// application memory footprint.
    #[must_use]
    pub fn live_bytes(&self) -> u64 {
        self.admins.iter().map(|a| a.live_bytes()).sum()
    }
}

/// Everything recorded during one run, plus the postmortem analyses.
#[derive(Debug, Clone)]
pub struct RunReport {
    pub trace: Trace,
    pub topo: Topology,
    pub t_end: SimTime,
}

impl RunReport {
    /// Number of sink outputs (frames that made it through the pipeline).
    #[must_use]
    pub fn outputs(&self) -> usize {
        self.trace
            .events()
            .iter()
            .filter(|e| matches!(e, TraceEvent::SinkOutput { .. }))
            .count()
    }

    /// Per-thread execution statistics (named via the stored topology with
    /// [`aru_metrics::thread_stats::render_thread_stats`]).
    #[must_use]
    pub fn thread_stats(
        &self,
    ) -> std::collections::BTreeMap<NodeId, aru_metrics::ThreadStats> {
        let lineage = Lineage::analyze(&self.trace);
        aru_metrics::thread_stats(&self.trace, &lineage)
    }

    /// Per-channel occupancy statistics.
    #[must_use]
    pub fn channel_stats(
        &self,
    ) -> std::collections::BTreeMap<NodeId, aru_metrics::ChannelStats> {
        aru_metrics::channel_stats(&self.trace, self.t_end)
    }

    /// Run the full postmortem suite.
    #[must_use]
    pub fn analyze(&self) -> RunAnalysis {
        let lineage = Lineage::analyze(&self.trace);
        let footprint = FootprintReport::compute(&self.trace, &lineage, self.t_end);
        let waste = WasteReport::compute(&lineage, self.t_end);
        let perf = PerfReport::compute(&self.trace, &lineage, self.t_end);
        let igc = IdealGc::from_lineage(&lineage, self.t_end);
        let faults = FaultReport::compute(&self.trace);
        RunAnalysis {
            footprint,
            waste,
            perf,
            igc,
            faults,
        }
    }
}

/// Bundled postmortem results for one run.
#[derive(Debug, Clone)]
pub struct RunAnalysis {
    pub footprint: FootprintReport,
    pub waste: WasteReport,
    pub perf: PerfReport,
    pub igc: IdealGc,
    pub faults: FaultReport,
}

#[cfg(test)]
mod tests {
    use crate::builder::RuntimeBuilder;
    use crate::error::{StampedeError, Step};
    use aru_core::{AruConfig, RetryPolicy};
    use aru_gc::GcMode;
    use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
    use std::sync::Arc;
    use std::time::{Duration, Instant};
    use vtime::Micros;

    /// Spin until `pred` holds (bounded); panics on timeout.
    fn wait_until(pred: impl Fn() -> bool, what: &str) {
        let t0 = Instant::now();
        while !pred() {
            assert!(
                t0.elapsed() < Duration::from_secs(10),
                "timed out waiting for {what}"
            );
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    #[test]
    fn supervisor_restarts_panicking_task() {
        let mut b = RuntimeBuilder::new(AruConfig::aru_min(), GcMode::None)
            .with_retry_policy(RetryPolicy::constant(3, Micros::from_millis(1)));
        let t = b.thread("flaky");
        let n = Arc::new(AtomicU32::new(0));
        let n2 = Arc::clone(&n);
        b.spawn(t, move |_| {
            let i = n2.fetch_add(1, Ordering::SeqCst);
            if i == 1 {
                panic!("injected crash");
            }
            if i >= 5 {
                return Ok(Step::Stop);
            }
            std::thread::sleep(Duration::from_millis(1));
            Ok(Step::Continue)
        });
        let running = b.build().unwrap().start();
        wait_until(|| n.load(Ordering::SeqCst) > 5, "task to finish");
        let report = running.stop().expect("recovered run completes cleanly");
        let faults = report.analyze().faults;
        assert_eq!(faults.crashes, 1);
        assert_eq!(faults.restarts, 1);
        assert!(n.load(Ordering::SeqCst) > 5, "task kept running after restart");
    }

    #[test]
    fn exhausted_retries_escalate_and_preserve_payload() {
        let mut b = RuntimeBuilder::new(AruConfig::aru_min(), GcMode::None)
            .with_retry_policy(RetryPolicy::none());
        let bomb = b.thread("bomb");
        let sink = b.thread("sink");
        let ch = b.channel::<Vec<u8>>("c");
        b.connect_out(bomb, &ch).unwrap();
        let mut input = b.connect_in(&ch, sink).unwrap();
        let sink_entered = Arc::new(AtomicBool::new(false));
        let sink_unblocked = Arc::new(AtomicBool::new(false));
        // The bomb waits for the sink to be blocked on the empty channel
        // before panicking, so the test exercises escalation *unblocking* a
        // peer (not just stopping it before it starts).
        let se = Arc::clone(&sink_entered);
        b.spawn(bomb, move |_| {
            while !se.load(Ordering::SeqCst) {
                std::thread::sleep(Duration::from_millis(1));
            }
            std::thread::sleep(Duration::from_millis(10));
            panic!("kaboom");
        });
        let se = Arc::clone(&sink_entered);
        let su = Arc::clone(&sink_unblocked);
        b.spawn(sink, move |ctx| {
            se.store(true, Ordering::SeqCst);
            // Blocks forever on the empty channel until escalation closes it.
            match input.get_latest(ctx) {
                Err(StampedeError::Closed) => {
                    su.store(true, Ordering::SeqCst);
                    Ok(Step::Stop)
                }
                other => {
                    let _ = other?;
                    Ok(Step::Continue)
                }
            }
        });
        let running = b.build().unwrap().start();
        wait_until(|| !running.is_running(), "escalation to shut the runtime down");
        wait_until(
            || sink_unblocked.load(Ordering::SeqCst),
            "escalation to close buffers and unblock the sink",
        );
        let err = running.stop().expect_err("permanent failure is reported");
        assert_eq!(err.task, "bomb");
        assert!(
            err.payload.contains("kaboom"),
            "panic payload preserved, got: {}",
            err.payload
        );
    }

    #[test]
    fn recovered_crash_is_journaled_and_snapshot_on_clean_stop() {
        let dir = std::env::temp_dir().join(format!("aru-journal-recover-{}", std::process::id()));
        let path = dir.join("run.journal.jsonl");
        let mut b = RuntimeBuilder::new(AruConfig::aru_min(), GcMode::None)
            .with_retry_policy(RetryPolicy::constant(3, Micros::from_millis(1)))
            .with_journal(&path);
        let t = b.thread("flaky");
        let n = Arc::new(AtomicU32::new(0));
        let n2 = Arc::clone(&n);
        b.spawn(t, move |_| {
            let i = n2.fetch_add(1, Ordering::SeqCst);
            if i == 1 {
                panic!("injected crash");
            }
            if i >= 5 {
                return Ok(Step::Stop);
            }
            std::thread::sleep(Duration::from_millis(1));
            Ok(Step::Continue)
        });
        let running = b.build().unwrap().start();
        wait_until(|| n.load(Ordering::SeqCst) > 5, "task to finish");
        running.stop().expect("recovered run completes cleanly");
        // Clean stop cut the snapshot; the crash → restart sequence must be
        // on record, with the restart at or after the crash.
        let j = aru_metrics::load_journal(&path).expect("clean-stop journal loads");
        assert_eq!(j.source, "threaded");
        assert_eq!(j.skipped, 0);
        let recs = &j.snapshot.records;
        let crash = recs
            .iter()
            .position(|r| matches!(r.kind, aru_metrics::JournalKind::Crash { attempt: 1 }))
            .expect("crash journaled");
        let restart = recs
            .iter()
            .position(|r| matches!(r.kind, aru_metrics::JournalKind::Restart { attempt: 1, .. }))
            .expect("restart journaled");
        assert!(recs[restart].t >= recs[crash].t, "restart after crash");
        assert!(
            !path.with_extension("crash.jsonl").exists(),
            "no crash dump for a recovered run"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn escalation_writes_loadable_crash_dump() {
        let dir = std::env::temp_dir().join(format!("aru-journal-escalate-{}", std::process::id()));
        let path = dir.join("run.journal.jsonl");
        let mut b = RuntimeBuilder::new(AruConfig::aru_min(), GcMode::None)
            .with_retry_policy(RetryPolicy::none())
            .with_journal(&path);
        let bomb = b.thread("bomb");
        b.spawn(bomb, move |_| {
            std::thread::sleep(Duration::from_millis(5));
            panic!("kaboom");
        });
        let running = b.build().unwrap().start();
        wait_until(|| !running.is_running(), "escalation to shut the runtime down");
        running.stop().expect_err("permanent failure is reported");
        // The escalating supervisor dumped the journal *before* requesting
        // shutdown — the evidence survives even though the run died.
        let dump = path.with_extension("crash.jsonl");
        let j = aru_metrics::load_journal(&dump).expect("crash dump loads");
        assert_eq!(j.source, "threaded");
        assert!(
            j.snapshot
                .records
                .iter()
                .any(|r| matches!(r.kind, aru_metrics::JournalKind::Crash { .. })),
            "crash on record"
        );
        assert!(
            j.snapshot
                .records
                .iter()
                .any(|r| matches!(r.kind, aru_metrics::JournalKind::Escalate { .. })),
            "escalation on record"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn blocked_get_times_out_when_configured() {
        let mut b = RuntimeBuilder::new(AruConfig::aru_min(), GcMode::None)
            .with_op_timeout(Micros::from_millis(5));
        let sink = b.thread("sink");
        let ch = b.channel::<Vec<u8>>("never-fed");
        let mut input = b.connect_in(&ch, sink).unwrap();
        let saw_timeout = Arc::new(AtomicBool::new(false));
        let st = Arc::clone(&saw_timeout);
        b.spawn(sink, move |ctx| match input.get_latest(ctx) {
            Err(StampedeError::Timeout) => {
                st.store(true, Ordering::SeqCst);
                Ok(Step::Stop)
            }
            other => {
                let _ = other?;
                Ok(Step::Continue)
            }
        });
        let running = b.build().unwrap().start();
        wait_until(|| saw_timeout.load(Ordering::SeqCst), "op timeout");
        let report = running.stop().expect("timeout is not a crash");
        assert!(saw_timeout.load(Ordering::SeqCst));
        let faults = report.analyze().faults;
        assert_eq!(faults.timeouts, 1);
        assert!(faults.any());
    }
}
