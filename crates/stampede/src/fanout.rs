//! Amortized fan-out: one frame to N output channels for the price of one.
//!
//! Tracker stages broadcast each result to 2–3 downstream channels. As
//! independent [`Output::put`]s that costs N deep clones of the payload,
//! N clock reads, and N feedback folds at N distinct times. [`FanOut`]
//! collapses the per-frame overhead:
//!
//! * the payload is boxed into **one `Arc`** shared by every channel (the
//!   channels' stores hold `Arc<T>` anyway — the deep clones were pure
//!   waste);
//! * the clock is read **once**; every channel's alloc event and every
//!   backward feedback fold carries that shared time (a channel that
//!   blocks the producer on capacity re-reads the clock after the wait so
//!   its trace stays monotone — see `Channel::put_arc_blocking`);
//! * each channel still returns its own cached summary-STP (a field read,
//!   see the channel docs) and the producer folds each into its own slot —
//!   feedback semantics are unchanged, only the redundant clock reads and
//!   clones are gone.
//!
//! Error behaviour matches the loop of puts it replaces: the first
//! `Closed`/`Timeout` aborts the fan-out, earlier channels keep the item.

use crate::channel::Output;
use crate::error::StampedeError;
use crate::item::ItemData;
use crate::task::TaskCtx;
use std::sync::Arc;
use vtime::Timestamp;

/// A bundle of producer endpoints written together each iteration.
pub struct FanOut<T: ItemData> {
    outs: Vec<Output<T>>,
}

impl<T: ItemData> FanOut<T> {
    /// Bundle the given endpoints. Panics on an empty bundle — a fan-out
    /// to nowhere is a wiring bug, not a runtime condition.
    #[must_use]
    pub fn new(outs: Vec<Output<T>>) -> Self {
        assert!(!outs.is_empty(), "FanOut needs at least one output");
        FanOut { outs }
    }

    /// Number of output channels in the bundle.
    #[must_use]
    pub fn width(&self) -> usize {
        self.outs.len()
    }

    /// Put one item to every channel in the bundle: one `Arc`, one clock
    /// read, one feedback time. Blocks per channel while bounded channels
    /// are full, in bundle order.
    pub fn put(&self, ctx: &mut TaskCtx, ts: Timestamp, value: T) -> Result<(), StampedeError> {
        let t0 = ctx.op_sample();
        let bytes = value.size_bytes();
        let value = Arc::new(value);
        let now = self.outs[0].ch.clock_now();
        for out in &self.outs {
            let summary = out
                .ch
                .put_arc_blocking(ctx, now, ts, Arc::clone(&value), bytes)?;
            if let Some(stp) = summary {
                ctx.receive_feedback_from_at(out.thread_out_index, stp, now, out.ch.node());
            }
        }
        if let Some(t0) = t0 {
            ctx.record_put_ns(t0);
        }
        Ok(())
    }

    /// The underlying endpoints (monitoring / tests).
    #[must_use]
    pub fn outputs(&self) -> &[Output<T>] {
        &self.outs
    }
}
