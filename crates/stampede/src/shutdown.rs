//! Cooperative shutdown signal with interruptible sleeping.

use crate::sync::{Condvar, Mutex};
use std::sync::Arc;
use std::time::Duration;
use vtime::Micros;

/// A shared shutdown flag that paced threads can sleep against so that
/// stopping the runtime never waits out a pacing sleep.
#[derive(Debug, Clone, Default)]
pub struct Shutdown {
    inner: Arc<ShutdownInner>,
}

#[derive(Debug, Default)]
struct ShutdownInner {
    flag: Mutex<bool>,
    cond: Condvar,
}

impl Shutdown {
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Has shutdown been requested?
    #[must_use]
    pub fn is_set(&self) -> bool {
        *self.inner.flag.lock()
    }

    /// Request shutdown and wake every sleeper.
    pub fn set(&self) {
        let mut g = self.inner.flag.lock();
        *g = true;
        self.inner.cond.notify_all();
    }

    /// Sleep for `d`, waking early on shutdown. Returns `true` if shutdown
    /// was requested (before or during the sleep).
    pub fn sleep(&self, d: Micros) -> bool {
        if d.is_zero() {
            return self.is_set();
        }
        self.sleep_until(std::time::Instant::now() + Duration::from(d))
    }

    /// Sleep until `deadline`, waking early on shutdown. Returns `true` if
    /// shutdown was requested (before or during the sleep). A deadline in
    /// the past returns immediately with the current flag state, which lets
    /// fixed-cadence loops (`next_tick += interval`) catch up after a slow
    /// tick without drifting their schedule.
    ///
    /// Spurious condvar wakeups re-enter the wait for the remaining time
    /// rather than cutting the sleep short.
    pub fn sleep_until(&self, deadline: std::time::Instant) -> bool {
        let mut g = self.inner.flag.lock();
        while !*g {
            let now = std::time::Instant::now();
            if now >= deadline {
                return false;
            }
            self.inner.cond.wait_for(&mut g, deadline - now);
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn sleep_times_out_without_shutdown() {
        let s = Shutdown::new();
        let t0 = Instant::now();
        let interrupted = s.sleep(Micros::from_millis(5));
        assert!(!interrupted);
        assert!(t0.elapsed() >= Duration::from_millis(4));
    }

    #[test]
    fn set_wakes_sleeper_early() {
        let s = Shutdown::new();
        let s2 = s.clone();
        let h = std::thread::spawn(move || {
            let t0 = Instant::now();
            let interrupted = s2.sleep(Micros::from_secs(10));
            (interrupted, t0.elapsed())
        });
        std::thread::sleep(Duration::from_millis(10));
        s.set();
        let (interrupted, elapsed) = h.join().unwrap();
        assert!(interrupted);
        assert!(elapsed < Duration::from_secs(5), "woke early");
    }

    #[test]
    fn zero_sleep_reports_state() {
        let s = Shutdown::new();
        assert!(!s.sleep(Micros::ZERO));
        s.set();
        assert!(s.sleep(Micros::ZERO));
        assert!(s.sleep(Micros::from_millis(50)), "already set: immediate");
    }

    #[test]
    fn sleep_until_past_deadline_returns_immediately() {
        let s = Shutdown::new();
        let t0 = Instant::now();
        assert!(!s.sleep_until(t0 - Duration::from_millis(50)));
        assert!(t0.elapsed() < Duration::from_millis(20), "no wait on a lapsed deadline");
        s.set();
        assert!(s.sleep_until(Instant::now() + Duration::from_secs(10)), "already set: immediate");
    }

    #[test]
    fn concurrent_set_from_many_threads_wakes_all_sleepers() {
        // Several sleepers, several racing setters: set() must be idempotent
        // under contention and every sleeper must wake promptly.
        let s = Shutdown::new();
        let sleepers: Vec<_> = (0..4)
            .map(|_| {
                let s = s.clone();
                std::thread::spawn(move || {
                    let t0 = Instant::now();
                    let interrupted = s.sleep(Micros::from_secs(30));
                    (interrupted, t0.elapsed())
                })
            })
            .collect();
        std::thread::sleep(Duration::from_millis(10));
        let setters: Vec<_> = (0..4)
            .map(|_| {
                let s = s.clone();
                std::thread::spawn(move || s.set())
            })
            .collect();
        for h in setters {
            h.join().unwrap();
        }
        for h in sleepers {
            let (interrupted, elapsed) = h.join().unwrap();
            assert!(interrupted, "sleeper saw the shutdown");
            assert!(elapsed < Duration::from_secs(10), "woke early");
        }
        assert!(s.is_set());
    }
}
