//! Bounded lock-free MPMC ring with per-slot sequence numbers.
//!
//! This is the data-plane half of the lock-free hot path (DESIGN.md §14):
//! a crossbeam-`ArrayQueue`-style ring where every slot carries a
//! sequence counter that encodes, relative to the unwrapped head/tail
//! positions, whether the slot is free for the push at that position,
//! holds a poppable item, or is mid-transfer. Producers and consumers
//! claim positions with a single CAS on `tail`/`head`; the payload
//! transfer itself is a plain (non-atomic) move guarded by the slot's
//! acquire/release sequence protocol.
//!
//! **Slot protocol** (capacity `cap`, position `pos`, slot `pos & mask`):
//!
//! | `seq` value     | meaning                                         |
//! |-----------------|-------------------------------------------------|
//! | `pos`           | free; the push that claims `pos` may write      |
//! | `pos + 1`       | full; the pop that claims `pos` may read        |
//! | `pos + cap`     | freed this lap; next-lap push at `pos+cap` sees it as free |
//! | anything less   | an earlier lap's transfer is still in flight    |
//!
//! **Transient full/empty is reported as full/empty.** When a competitor
//! has claimed a position but not yet released the slot (`seq` lags the
//! claimed position), `try_push`/`try_pop` return `Full`/`None` instead
//! of spinning until the competitor finishes. The caller treats it as a
//! capacity/empty condition and takes the parking path. This is what
//! keeps every loop here bounded: a retry happens only after a CAS
//! failure, which proves another thread advanced the counter. Under the
//! vendored loom scheduler (which may never preempt a runnable thread)
//! an unbounded "wait for the other thread's store" spin would livelock;
//! blocking on the parking condvar instead gives the model a schedulable
//! edge.
//!
//! **Batch claims** reserve a contiguous position range with one CAS:
//! scan the ready prefix of slots (free for push / full for pop), then
//! CAS the counter forward by the prefix length. The scan stays valid at
//! CAS time because a free slot can only leave the free state via a push
//! that first claims its position (impossible — the counter hasn't moved
//! past it), and a full slot can only drain via a pop that first claims
//! its position; poppers/pushers on *other* positions only ever move
//! slots *into* the state the scan wants.

use crate::sync::atomic::{AtomicU64, Ordering};
use std::cell::UnsafeCell;
use std::mem::MaybeUninit;

/// Pad to a cache line so head and tail don't false-share.
#[repr(align(64))]
struct CachePadded<T>(T);

struct Slot<T> {
    seq: AtomicU64,
    value: UnsafeCell<MaybeUninit<T>>,
}

/// Bounded lock-free MPMC ring. Capacity is rounded up to a power of two.
pub(crate) struct MpmcRing<T> {
    head: CachePadded<AtomicU64>,
    tail: CachePadded<AtomicU64>,
    slots: Box<[Slot<T>]>,
    mask: u64,
}

// SAFETY: slot payloads are transferred by value under the seq protocol —
// exactly one thread has claimed any given position between the claim CAS
// and the seq release-store, so the UnsafeCell is never accessed
// concurrently. T crossing threads requires T: Send; the ring itself
// never hands out references to the payload.
unsafe impl<T: Send> Send for MpmcRing<T> {}
unsafe impl<T: Send> Sync for MpmcRing<T> {}

impl<T> MpmcRing<T> {
    pub(crate) fn new(capacity: usize) -> Self {
        let cap = capacity.max(2).next_power_of_two() as u64;
        let slots: Box<[Slot<T>]> = (0..cap)
            .map(|i| Slot {
                seq: AtomicU64::new(i),
                value: UnsafeCell::new(MaybeUninit::uninit()),
            })
            .collect();
        MpmcRing {
            head: CachePadded(AtomicU64::new(0)),
            tail: CachePadded(AtomicU64::new(0)),
            slots,
            mask: cap - 1,
        }
    }

    pub(crate) fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Items currently in the ring (racy snapshot; exact when quiescent).
    pub(crate) fn len(&self) -> usize {
        let tail = self.tail.0.load(Ordering::SeqCst);
        let head = self.head.0.load(Ordering::SeqCst);
        tail.saturating_sub(head) as usize
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Push one item; `Err(value)` when the ring is full (or a transfer at
    /// the tail position is still in flight — treated as full, see the
    /// module docs).
    pub(crate) fn try_push(&self, value: T) -> Result<(), T> {
        let cap = self.slots.len() as u64;
        let mut tail = self.tail.0.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[(tail & self.mask) as usize];
            let seq = slot.seq.load(Ordering::Acquire);
            if seq == tail {
                match self.tail.0.compare_exchange(
                    tail,
                    tail + 1,
                    Ordering::SeqCst,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: the CAS claimed position `tail`
                        // exclusively; the slot's seq said it is free.
                        unsafe { (*slot.value.get()).write(value) };
                        slot.seq.store(tail + 1, Ordering::Release);
                        return Ok(());
                    }
                    Err(actual) => tail = actual, // competitor advanced: retry
                }
            } else if seq < tail {
                // Occupied from the previous lap (full), or a pop at
                // `tail - cap` hasn't released yet (transient — also full).
                return Err(value);
            } else {
                // seq > tail: our tail read is stale; a push at `tail`
                // already completed, so the counter has moved.
                let cur = self.tail.0.load(Ordering::Relaxed);
                if cur == tail {
                    debug_assert!(seq >= tail + cap, "seq ahead of an unmoved tail");
                    return Err(value); // freed for a future lap we can't reach yet
                }
                tail = cur;
            }
        }
    }

    /// Pop one item; `None` when empty (or the push at the head position
    /// is still in flight — treated as empty).
    pub(crate) fn try_pop(&self) -> Option<T> {
        let cap = self.slots.len() as u64;
        let mut head = self.head.0.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[(head & self.mask) as usize];
            let seq = slot.seq.load(Ordering::Acquire);
            if seq == head + 1 {
                match self.head.0.compare_exchange(
                    head,
                    head + 1,
                    Ordering::SeqCst,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: the CAS claimed position `head`
                        // exclusively; the slot's seq said it holds a value.
                        let value = unsafe { (*slot.value.get()).assume_init_read() };
                        slot.seq.store(head + cap, Ordering::Release);
                        return Some(value);
                    }
                    Err(actual) => head = actual,
                }
            } else if seq <= head {
                // Free (empty), or a push claimed `head` but hasn't
                // released (transient — also empty).
                return None;
            } else {
                let cur = self.head.0.load(Ordering::Relaxed);
                if cur == head {
                    return None;
                }
                head = cur;
            }
        }
    }

    /// Push a contiguous prefix of `items` with a single claim CAS.
    /// Returns the number pushed (0 when full); unpushed items stay in
    /// `items` (drained from the front).
    pub(crate) fn try_push_batch(&self, items: &mut std::collections::VecDeque<T>) -> usize {
        let want = items.len().min(self.slots.len()) as u64;
        if want == 0 {
            return 0;
        }
        loop {
            let tail = self.tail.0.load(Ordering::Relaxed);
            // Ready prefix: every slot in [tail, tail+n) free for this lap.
            let mut n = 0u64;
            while n < want {
                let pos = tail + n;
                if self.slots[(pos & self.mask) as usize].seq.load(Ordering::Acquire) != pos {
                    break;
                }
                n += 1;
            }
            if n == 0 {
                return 0;
            }
            if self
                .tail
                .0
                .compare_exchange(tail, tail + n, Ordering::SeqCst, Ordering::Relaxed)
                .is_err()
            {
                continue; // competitor advanced tail: re-scan from the new tail
            }
            // The scanned prefix is still free: no push could claim those
            // positions (tail hadn't moved), and pops only free slots.
            for i in 0..n {
                let pos = tail + i;
                let slot = &self.slots[(pos & self.mask) as usize];
                let value = items.pop_front().expect("scan bounded by items.len()");
                // SAFETY: position claimed exclusively by the CAS above.
                unsafe { (*slot.value.get()).write(value) };
                slot.seq.store(pos + 1, Ordering::Release);
            }
            return n as usize;
        }
    }

    /// Pop up to `max` items with a single claim CAS, appending to `out`.
    /// Returns the number popped.
    pub(crate) fn try_pop_batch(&self, out: &mut Vec<T>, max: usize) -> usize {
        let cap = self.slots.len() as u64;
        let want = max.min(self.slots.len()) as u64;
        if want == 0 {
            return 0;
        }
        loop {
            let head = self.head.0.load(Ordering::Relaxed);
            let mut n = 0u64;
            while n < want {
                let pos = head + n;
                if self.slots[(pos & self.mask) as usize].seq.load(Ordering::Acquire) != pos + 1 {
                    break;
                }
                n += 1;
            }
            if n == 0 {
                return 0;
            }
            if self
                .head
                .0
                .compare_exchange(head, head + n, Ordering::SeqCst, Ordering::Relaxed)
                .is_err()
            {
                continue;
            }
            for i in 0..n {
                let pos = head + i;
                let slot = &self.slots[(pos & self.mask) as usize];
                // SAFETY: position claimed exclusively by the CAS above.
                let value = unsafe { (*slot.value.get()).assume_init_read() };
                slot.seq.store(pos + cap, Ordering::Release);
                out.push(value);
            }
            return n as usize;
        }
    }
}

impl<T> Drop for MpmcRing<T> {
    fn drop(&mut self) {
        // Exclusive access: drain whatever is still in flight.
        while self.try_pop().is_some() {}
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use std::collections::VecDeque;

    #[test]
    fn fifo_order_and_capacity() {
        let r: MpmcRing<u64> = MpmcRing::new(4);
        assert_eq!(r.capacity(), 4);
        for i in 0..4 {
            r.try_push(i).unwrap();
        }
        assert_eq!(r.try_push(99), Err(99));
        assert_eq!(r.len(), 4);
        for i in 0..4 {
            assert_eq!(r.try_pop(), Some(i));
        }
        assert_eq!(r.try_pop(), None);
        // Wrap-around: keeps working across laps.
        for lap in 0..10u64 {
            r.try_push(lap).unwrap();
            assert_eq!(r.try_pop(), Some(lap));
        }
    }

    #[test]
    fn batch_claims_shrink_to_ready_prefix() {
        let r: MpmcRing<u64> = MpmcRing::new(4);
        let mut items: VecDeque<u64> = (0..6).collect();
        assert_eq!(r.try_push_batch(&mut items), 4);
        assert_eq!(items.len(), 2);
        let mut out = Vec::new();
        assert_eq!(r.try_pop_batch(&mut out, 3), 3);
        assert_eq!(out, vec![0, 1, 2]);
        assert_eq!(r.try_push_batch(&mut items), 2);
        out.clear();
        assert_eq!(r.try_pop_batch(&mut out, 8), 3);
        assert_eq!(out, vec![3, 4, 5]);
    }

    #[test]
    fn drop_drains_in_flight_items() {
        let r: MpmcRing<std::sync::Arc<u64>> = MpmcRing::new(8);
        let v = std::sync::Arc::new(7u64);
        for _ in 0..5 {
            r.try_push(std::sync::Arc::clone(&v)).unwrap();
        }
        assert_eq!(std::sync::Arc::strong_count(&v), 6);
        drop(r);
        assert_eq!(std::sync::Arc::strong_count(&v), 1);
    }

    #[test]
    fn concurrent_mpmc_no_loss_no_dup() {
        use std::sync::atomic::{AtomicU64 as StdU64, Ordering as O};
        let r: MpmcRing<u64> = MpmcRing::new(64);
        const PER: u64 = 20_000;
        const PRODUCERS: u64 = 3;
        let sum = StdU64::new(0);
        let count = StdU64::new(0);
        std::thread::scope(|s| {
            for p in 0..PRODUCERS {
                let r = &r;
                s.spawn(move || {
                    for i in 0..PER {
                        let mut v = p * PER + i;
                        loop {
                            match r.try_push(v) {
                                Ok(()) => break,
                                Err(back) => {
                                    v = back;
                                    std::thread::yield_now();
                                }
                            }
                        }
                    }
                });
            }
            for _ in 0..3 {
                let (r, sum, count) = (&r, &sum, &count);
                s.spawn(move || loop {
                    if count.load(O::SeqCst) >= PRODUCERS * PER {
                        break;
                    }
                    match r.try_pop() {
                        Some(v) => {
                            sum.fetch_add(v, O::SeqCst);
                            count.fetch_add(1, O::SeqCst);
                        }
                        None => std::thread::yield_now(),
                    }
                });
            }
        });
        let n = PRODUCERS * PER;
        assert_eq!(count.load(O::SeqCst), n);
        assert_eq!(sum.load(O::SeqCst), n * (n - 1) / 2);
    }
}
