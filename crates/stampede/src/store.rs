//! Hybrid item store for channels: a dense timestamp ring with BTreeMap
//! spill.
//!
//! Source threads issue monotonically increasing timestamps, so the stream
//! a channel actually holds is almost always a *dense in-order run*:
//! `ts, ts+1, ts+2, …` with occasional short gaps where a frame was
//! dropped. A `BTreeMap<Timestamp, _>` pays O(log n) pointer-chasing on
//! every put, lookup, and purge for a workload that is morally a `VecDeque`.
//!
//! [`ItemStore`] therefore keeps two structures:
//!
//! * **ring** — a `VecDeque<Option<Stored<T>>>` where slot `i` holds the
//!   item at timestamp `base + i`. In-order puts are an O(1) `push_back`,
//!   lookups are an O(1) index, the newest item is the back slot, and the
//!   watermark purge pops dead items off the front. Short gaps (≤
//!   [`MAX_RING_GAP`] missing timestamps) become `None` holes so a lost
//!   frame does not end the dense run.
//! * **spill** — the old `BTreeMap`, holding everything the ring cannot
//!   represent cheaply: timestamps below the ring's base (out-of-order
//!   arrivals) and jumps too far past its back. Correctness never depends
//!   on which side an item landed on.
//!
//! Invariants (checked by the equivalence proptest at the bottom):
//!
//! 1. A timestamp inside the ring's span `[base, base+ring.len())` is never
//!    present in the spill — every query can probe the ring by index first
//!    and fall through to the spill without deduplication.
//! 2. The ring's front and back slots are always occupied (`Some`); holes
//!    only exist in the middle. This keeps "newest item" a field read.
//! 3. Extending the ring across a gap migrates any spill entries that the
//!    new span swallows (they arrived out of order earlier), preserving
//!    invariant 1.
//! 4. `purge_before(b)` leaves no item with `ts < b` on either side.
//!
//! The store is not synchronized — it lives inside the channel's state
//! mutex, exactly where the `BTreeMap` lived. Lock-free *observers* of
//! the channel (`len`/`live_bytes`/`summary`, DESIGN.md §14) never read
//! this structure: the channel mirrors the occupancy counts into atomics
//! at the end of each mutating locked section, so the store can stay a
//! plain single-writer data structure.

use aru_metrics::ItemId;
use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;
use vtime::Timestamp;

/// An item held by a channel.
pub(crate) struct Stored<T> {
    pub(crate) value: Arc<T>,
    pub(crate) id: ItemId,
    pub(crate) bytes: u64,
}

/// Largest run of missing timestamps the ring will bridge with holes. A
/// gap beyond this (a source restart, a sparse stream) spills instead —
/// holes cost a slot each, so bridging huge jumps would trade O(1) ops for
/// unbounded memory.
const MAX_RING_GAP: u64 = 32;

pub(crate) struct ItemStore<T> {
    /// Timestamp of `ring[0]`; meaningful only while the ring is non-empty.
    base: u64,
    ring: VecDeque<Option<Stored<T>>>,
    /// Occupied (`Some`) ring slots.
    occupied: usize,
    spill: BTreeMap<Timestamp, Stored<T>>,
}

impl<T> ItemStore<T> {
    pub(crate) fn new() -> Self {
        ItemStore {
            base: 0,
            ring: VecDeque::new(),
            occupied: 0,
            spill: BTreeMap::new(),
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.occupied + self.spill.len()
    }

    // Proptest-only helper; the equivalence test is excluded from loom
    // builds, so gate identically to avoid a dead-code warn in that lane.
    #[cfg(all(test, not(loom)))]
    pub(crate) fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Timestamp of the last ring slot (callers check `!ring.is_empty()`).
    fn back_ts(&self) -> u64 {
        self.base + self.ring.len() as u64 - 1
    }

    fn in_ring_span(&self, ts: u64) -> bool {
        !self.ring.is_empty() && ts >= self.base && ts <= self.back_ts()
    }

    pub(crate) fn contains(&self, ts: Timestamp) -> bool {
        self.get(ts).is_some()
    }

    pub(crate) fn get(&self, ts: Timestamp) -> Option<&Stored<T>> {
        if self.in_ring_span(ts.raw()) {
            self.ring[(ts.raw() - self.base) as usize].as_ref()
        } else {
            self.spill.get(&ts)
        }
    }

    /// Insert, returning the displaced item when `ts` was already present.
    pub(crate) fn insert(&mut self, ts: Timestamp, stored: Stored<T>) -> Option<Stored<T>> {
        let t = ts.raw();
        if self.ring.is_empty() {
            // Anchor a fresh dense run here; the same timestamp may sit in
            // the spill from before the last purge emptied the ring.
            let old = self.spill.remove(&ts);
            self.base = t;
            self.ring.push_back(Some(stored));
            self.occupied = 1;
            return old;
        }
        if t >= self.base {
            let back = self.back_ts();
            if t <= back {
                let slot = &mut self.ring[(t - self.base) as usize];
                let old = slot.replace(stored);
                if old.is_none() {
                    self.occupied += 1;
                }
                return old;
            }
            if t - back <= MAX_RING_GAP + 1 {
                // Dense append (t == back+1) or a bridgeable gap: grow the
                // ring, pulling in any out-of-order spill entries the new
                // span swallows (invariant 1).
                for _ in back + 1..t {
                    self.ring.push_back(None);
                }
                if t > back + 1 && !self.spill.is_empty() {
                    let trapped: Vec<Timestamp> = self
                        .spill
                        .range(Timestamp(back + 1)..ts)
                        .map(|(&k, _)| k)
                        .collect();
                    for k in trapped {
                        let v = self.spill.remove(&k).expect("key just seen");
                        self.ring[(k.raw() - self.base) as usize] = Some(v);
                        self.occupied += 1;
                    }
                }
                let old = self.spill.remove(&ts);
                self.ring.push_back(Some(stored));
                self.occupied += 1;
                return old;
            }
        }
        self.spill.insert(ts, stored)
    }

    pub(crate) fn remove(&mut self, ts: Timestamp) -> Option<Stored<T>> {
        if self.in_ring_span(ts.raw()) {
            let taken = self.ring[(ts.raw() - self.base) as usize].take();
            if taken.is_some() {
                self.occupied -= 1;
                self.trim();
            }
            taken
        } else {
            self.spill.remove(&ts)
        }
    }

    /// Restore invariant 2 after a removal: drop leading/trailing holes.
    fn trim(&mut self) {
        if self.occupied == 0 {
            self.ring.clear();
            return;
        }
        while matches!(self.ring.front(), Some(None)) {
            self.ring.pop_front();
            self.base += 1;
        }
        while matches!(self.ring.back(), Some(None)) {
            self.ring.pop_back();
        }
    }

    /// The newest item (greatest timestamp) — O(1) in the dense case.
    pub(crate) fn latest(&self) -> Option<(Timestamp, &Stored<T>)> {
        let ring_back = self
            .ring
            .back()
            .and_then(|s| s.as_ref().map(|v| (Timestamp(self.back_ts()), v)));
        let spill_back = self.spill.iter().next_back().map(|(&k, v)| (k, v));
        match (ring_back, spill_back) {
            (Some(r), Some(s)) => Some(if r.0 >= s.0 { r } else { s }),
            (r, s) => r.or(s),
        }
    }

    /// The newest item with timestamp `<= ts`.
    pub(crate) fn latest_at_or_before(&self, ts: Timestamp) -> Option<(Timestamp, &Stored<T>)> {
        let t = ts.raw();
        let ring_hit = if !self.ring.is_empty() && t >= self.base {
            let start = (t.min(self.back_ts()) - self.base) as usize;
            (0..=start).rev().find_map(|i| {
                self.ring[i]
                    .as_ref()
                    .map(|v| (Timestamp(self.base + i as u64), v))
            })
        } else {
            None
        };
        let spill_hit = self.spill.range(..=ts).next_back().map(|(&k, v)| (k, v));
        match (ring_hit, spill_hit) {
            (Some(r), Some(s)) => Some(if r.0 >= s.0 { r } else { s }),
            (r, s) => r.or(s),
        }
    }

    /// Visit the `n` newest items in descending timestamp order.
    pub(crate) fn for_each_newest(&self, n: usize, mut f: impl FnMut(Timestamp, &Stored<T>)) {
        let mut ring_it = (0..self.ring.len())
            .rev()
            .filter_map(|i| self.ring[i].as_ref().map(|v| (Timestamp(self.base + i as u64), v)))
            .peekable();
        let mut spill_it = self.spill.iter().rev().map(|(&k, v)| (k, v)).peekable();
        for _ in 0..n {
            let take_ring = match (ring_it.peek(), spill_it.peek()) {
                (Some(r), Some(s)) => r.0 >= s.0,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => return,
            };
            let (ts, v) = if take_ring {
                ring_it.next().expect("peeked")
            } else {
                spill_it.next().expect("peeked")
            };
            f(ts, v);
        }
    }

    /// Visit items with `ts >= floor` in ascending timestamp order, at most
    /// `max` of them. Returns how many were visited.
    pub(crate) fn for_each_from(
        &self,
        floor: Timestamp,
        max: usize,
        mut f: impl FnMut(Timestamp, &Stored<T>),
    ) -> usize {
        let mut ring_it = self
            .ring_indices_from(floor)
            .filter_map(|i| self.ring[i].as_ref().map(|v| (Timestamp(self.base + i as u64), v)))
            .peekable();
        let mut spill_it = self.spill.range(floor..).map(|(&k, v)| (k, v)).peekable();
        let mut visited = 0;
        while visited < max {
            let take_ring = match (ring_it.peek(), spill_it.peek()) {
                (Some(r), Some(s)) => r.0 <= s.0,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => break,
            };
            let (ts, v) = if take_ring {
                ring_it.next().expect("peeked")
            } else {
                spill_it.next().expect("peeked")
            };
            f(ts, v);
            visited += 1;
        }
        visited
    }

    fn ring_indices_from(&self, floor: Timestamp) -> std::ops::Range<usize> {
        if self.ring.is_empty() || floor.raw() > self.back_ts() {
            return 0..0;
        }
        let start = floor.raw().saturating_sub(self.base).min(self.ring.len() as u64) as usize;
        start..self.ring.len()
    }

    /// Remove every item with `ts < bound`, handing each to `f`. Front pops
    /// on the ring, one `split_off` on the spill.
    pub(crate) fn purge_before(&mut self, bound: Timestamp, mut f: impl FnMut(Stored<T>)) {
        let b = bound.raw();
        while !self.ring.is_empty() && self.base < b {
            if let Some(Some(stored)) = self.ring.pop_front() {
                self.occupied -= 1;
                f(stored);
            }
            self.base += 1;
        }
        self.trim();
        if self
            .spill
            .first_key_value()
            .is_some_and(|(&k, _)| k < bound)
        {
            let keep = self.spill.split_off(&bound);
            for (_ts, stored) in std::mem::replace(&mut self.spill, keep) {
                f(stored);
            }
        }
    }

    /// Remove everything, handing each item to `f` (channel close).
    pub(crate) fn drain(&mut self, mut f: impl FnMut(Stored<T>)) {
        for stored in self.ring.drain(..).flatten() {
            f(stored);
        }
        self.occupied = 0;
        for (_ts, stored) in std::mem::take(&mut self.spill) {
            f(stored);
        }
    }

    /// (ring-resident, spill-resident) item counts — observability for
    /// tests and the hotpath bench.
    pub(crate) fn depths(&self) -> (usize, usize) {
        (self.occupied, self.spill.len())
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeMap;

    fn stored(id: u64, bytes: u64) -> Stored<u64> {
        Stored {
            value: Arc::new(id),
            id: ItemId(id),
            bytes,
        }
    }

    #[test]
    fn dense_stream_stays_in_ring() {
        let mut s = ItemStore::new();
        for t in 0..100u64 {
            assert!(s.insert(Timestamp(t), stored(t, 1)).is_none());
        }
        assert_eq!(s.depths(), (100, 0));
        assert_eq!(s.latest().unwrap().0, Timestamp(99));
        assert_eq!(s.get(Timestamp(42)).unwrap().id, ItemId(42));
        let mut purged = 0;
        s.purge_before(Timestamp(90), |_| purged += 1);
        assert_eq!(purged, 90);
        assert_eq!(s.len(), 10);
        assert_eq!(s.depths(), (10, 0));
    }

    #[test]
    fn small_gap_becomes_hole_large_gap_spills() {
        let mut s = ItemStore::new();
        s.insert(Timestamp(0), stored(0, 1));
        s.insert(Timestamp(3), stored(3, 1)); // gap of 2: bridged
        assert_eq!(s.depths(), (2, 0));
        assert!(s.get(Timestamp(1)).is_none());
        s.insert(Timestamp(500), stored(500, 1)); // far jump: spills
        assert_eq!(s.depths(), (2, 1));
        assert_eq!(s.latest().unwrap().0, Timestamp(500));
    }

    #[test]
    fn ring_extension_swallows_spilled_out_of_order_items() {
        let mut s = ItemStore::new();
        s.insert(Timestamp(10), stored(10, 1));
        // Arrives far below base: spills.
        s.insert(Timestamp(2), stored(2, 1));
        assert_eq!(s.depths(), (1, 1));
        // Ring re-anchors after a removal empties it; the spilled entry at
        // 2 must be replaced, not duplicated, when 2 is re-put.
        assert!(s.remove(Timestamp(10)).is_some());
        assert_eq!(s.depths(), (0, 1));
        let old = s.insert(Timestamp(2), stored(99, 1));
        assert_eq!(old.unwrap().id, ItemId(2));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn gap_bridge_migrates_trapped_spill_entries() {
        let mut s = ItemStore::new();
        s.insert(Timestamp(0), stored(0, 1));
        s.insert(Timestamp(100), stored(100, 1)); // spills (gap > MAX)
        assert_eq!(s.depths(), (1, 1));
        // Fill forward densely to 99: ring back reaches 99; 100 still spilled.
        for t in 1..100 {
            s.insert(Timestamp(t), stored(t, 1));
        }
        // Appending 100 again must displace the spilled copy.
        let old = s.insert(Timestamp(100), stored(1000, 1));
        assert_eq!(old.unwrap().id, ItemId(100));
        assert_eq!(s.depths(), (101, 0));
    }

    /// The bridging condition is `t - back <= MAX_RING_GAP + 1`: a jump to
    /// `back + MAX_RING_GAP + 1` leaves exactly `MAX_RING_GAP` missing
    /// timestamps, the largest run of holes the ring accepts. Pin both
    /// sides of that boundary so an off-by-one in the condition (or a
    /// redefinition of "gap") trips a test.
    #[test]
    fn gap_of_exactly_max_ring_gap_bridges() {
        let mut s = ItemStore::new();
        s.insert(Timestamp(0), stored(0, 1));
        let t = MAX_RING_GAP + 1; // MAX_RING_GAP holes between 0 and t
        assert!(s.insert(Timestamp(t), stored(t, 1)).is_none());
        assert_eq!(s.depths(), (2, 0), "boundary gap must stay in the ring");
        assert_eq!(s.get(Timestamp(t)).unwrap().id, ItemId(t));
        // Every bridged slot is a hole, not an item.
        for hole in 1..t {
            assert!(s.get(Timestamp(hole)).is_none());
        }
        assert_eq!(s.latest().unwrap().0, Timestamp(t));
    }

    #[test]
    fn gap_one_past_max_ring_gap_spills() {
        let mut s = ItemStore::new();
        s.insert(Timestamp(0), stored(0, 1));
        let t = MAX_RING_GAP + 2; // one hole too many: must spill
        assert!(s.insert(Timestamp(t), stored(t, 1)).is_none());
        assert_eq!(s.depths(), (1, 1), "past-boundary gap must spill");
        assert_eq!(s.get(Timestamp(t)).unwrap().id, ItemId(t));
        assert_eq!(s.latest().unwrap().0, Timestamp(t));
    }

    #[test]
    fn boundary_bridge_migrates_trapped_spill_entry() {
        let mut s = ItemStore::new();
        s.insert(Timestamp(0), stored(0, 1));
        // Far jump spills (gap 39 > MAX_RING_GAP).
        s.insert(Timestamp(40), stored(40, 1));
        assert_eq!(s.depths(), (1, 1));
        // Bridgeable jump: back becomes 20.
        s.insert(Timestamp(20), stored(20, 1));
        assert_eq!(s.depths(), (2, 1));
        // Exactly-boundary jump from 20 to 20 + MAX_RING_GAP + 1 swallows
        // the spilled 40 into the new span (invariant 1).
        let t = 20 + MAX_RING_GAP + 1;
        assert!(s.insert(Timestamp(t), stored(t, 1)).is_none());
        assert_eq!(s.depths(), (4, 0), "trapped spill entry must migrate");
        assert_eq!(s.get(Timestamp(40)).unwrap().id, ItemId(40));
        assert_eq!(s.latest().unwrap().0, Timestamp(t));
    }

    /// Reference model: the plain BTreeMap the ring store replaced.
    #[derive(Default)]
    struct Model {
        items: BTreeMap<Timestamp, (u64, u64)>, // ts -> (id, bytes)
    }

    #[derive(Debug, Clone, Copy)]
    enum Op {
        Insert(u64),
        Remove(u64),
        PurgeBefore(u64),
        GetLatest,
        AtOrBefore(u64),
        NewestN(usize),
        RangeFrom(u64, usize),
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        (0u64..8, 0u64..200, 1usize..6).prop_map(|(k, ts, n)| match k {
            0..=2 => Op::Insert(ts), // bias toward inserts
            3 => Op::Remove(ts),
            4 => Op::PurgeBefore(ts),
            5 => Op::GetLatest,
            6 => Op::AtOrBefore(ts),
            _ => {
                if n % 2 == 0 {
                    Op::NewestN(n)
                } else {
                    Op::RangeFrom(ts, n)
                }
            }
        })
    }

    // Mixed in-order / out-of-order / purge interleavings: the hybrid
    // store must be observably identical to the BTreeMap it replaced.
    //
    // In-order bias: half the inserts are rewritten into "next dense
    // timestamp" appends so the ring path is genuinely exercised, not just
    // the spill.
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]
        fn ring_store_equals_btreemap_model(
            ops in prop::collection::vec(op_strategy(), 1..120),
            dense_bias in prop::collection::vec(0u8..2, 1..120),
        ) {
            let mut store: ItemStore<u64> = ItemStore::new();
            let mut model = Model::default();
            let mut next_id = 0u64;
            let mut next_dense = 0u64;
            for (i, op) in ops.iter().enumerate() {
                let op = match (op, dense_bias.get(i).copied().unwrap_or(0)) {
                    // Rewrite half the inserts into dense appends.
                    (Op::Insert(_), 1) => {
                        next_dense += 1;
                        Op::Insert(next_dense)
                    }
                    (o, _) => *o,
                };
                match op {
                    Op::Insert(t) => {
                        let ts = Timestamp(t);
                        let id = next_id;
                        next_id += 1;
                        let bytes = t + 1;
                        let old_s = store.insert(ts, stored(id, bytes));
                        let old_m = model.items.insert(ts, (id, bytes));
                        prop_assert_eq!(old_s.map(|s| s.id.0), old_m.map(|(id, _)| id));
                    }
                    Op::Remove(t) => {
                        let ts = Timestamp(t);
                        let a = store.remove(ts).map(|s| s.id.0);
                        let b = model.items.remove(&ts).map(|(id, _)| id);
                        prop_assert_eq!(a, b);
                    }
                    Op::PurgeBefore(t) => {
                        let bound = Timestamp(t);
                        let mut got: Vec<u64> = Vec::new();
                        store.purge_before(bound, |s| got.push(s.id.0));
                        got.sort_unstable();
                        let keep = model.items.split_off(&bound);
                        let mut want: Vec<u64> = std::mem::replace(&mut model.items, keep)
                            .into_values()
                            .map(|(id, _)| id)
                            .collect();
                        want.sort_unstable();
                        prop_assert_eq!(got, want);
                    }
                    Op::GetLatest => {
                        let a = store.latest().map(|(ts, s)| (ts, s.id.0));
                        let b = model.items.iter().next_back().map(|(&ts, &(id, _))| (ts, id));
                        prop_assert_eq!(a, b);
                    }
                    Op::AtOrBefore(t) => {
                        let ts = Timestamp(t);
                        let a = store.latest_at_or_before(ts).map(|(ts, s)| (ts, s.id.0));
                        let b = model
                            .items
                            .range(..=ts)
                            .next_back()
                            .map(|(&ts, &(id, _))| (ts, id));
                        prop_assert_eq!(a, b);
                    }
                    Op::NewestN(n) => {
                        let mut a = Vec::new();
                        store.for_each_newest(n, |ts, s| a.push((ts, s.id.0)));
                        let b: Vec<(Timestamp, u64)> = model
                            .items
                            .iter()
                            .rev()
                            .take(n)
                            .map(|(&ts, &(id, _))| (ts, id))
                            .collect();
                        prop_assert_eq!(a, b);
                    }
                    Op::RangeFrom(t, n) => {
                        let floor = Timestamp(t);
                        let mut a = Vec::new();
                        store.for_each_from(floor, n, |ts, s| a.push((ts, s.id.0)));
                        let b: Vec<(Timestamp, u64)> = model
                            .items
                            .range(floor..)
                            .take(n)
                            .map(|(&ts, &(id, _))| (ts, id))
                            .collect();
                        prop_assert_eq!(a, b);
                    }
                }
                prop_assert_eq!(store.len(), model.items.len());
                prop_assert_eq!(store.is_empty(), model.items.is_empty());
                // Spot-check membership over the active key range.
                for probe in [0u64, 1, 50, 199] {
                    prop_assert_eq!(
                        store.contains(Timestamp(probe)),
                        model.items.contains_key(&Timestamp(probe))
                    );
                }
            }
        }
    }
}
