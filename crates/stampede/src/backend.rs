//! Backend-selectable queue endpoints (DESIGN.md §14).
//!
//! [`crate::RuntimeBuilder`] can construct a task graph's FIFO edges over
//! either queue implementation:
//!
//! * [`QueueBackend::Mutex`] — the mutex+condvar [`Queue`]:
//!   unbounded, full per-item lineage tracing, DGC purge. The default,
//!   and the semantic oracle the differential suites compare against.
//! * [`QueueBackend::LockFree`] — the bounded [`LfQueue`]
//!   MPMC ring with epoch parking: the 7 ns/op put path, change-gated
//!   summary folds, per-endpoint telemetry shards. Accepted divergences
//!   (no per-item trace events, no DGC purge, capacity backpressure) are
//!   documented in DESIGN.md §14 and pinned by
//!   `tests/lockfree_equivalence.rs`.
//!
//! The [`QueueOutput`]/[`QueueInput`] endpoints below are what
//! `connect_queue_out`/`connect_queue_in` hand to task bodies — one type
//! regardless of backend, so the same task code runs on both and the
//! backend parity suite (`tests/backend_parity.rs`) can drive identical
//! schedules through each. Both also feed the occupancy observation the
//! PID law's `PidInput::OccupancyError` consumes: every
//! `OCC_FEEDBACK`-th put samples the queue's lock-free `len()` into
//! [`TaskCtx::observe_occupancy`].

use crate::error::StampedeError;
use crate::item::{ItemData, StampedItem};
use crate::lfqueue::{LfQueue, LfQueueInput, LfQueueOutput};
use crate::queue::{MutexQueueInput, MutexQueueOutput, Queue};
use crate::task::TaskCtx;
use std::sync::Arc;
use vtime::Timestamp;

/// Default ring capacity for [`QueueBackend::lock_free`]: deep enough
/// that ARU pacing (not ring backpressure) governs steady state, small
/// enough that a runaway producer is bounded.
pub const DEFAULT_LF_CAPACITY: usize = 1024;

/// Producer-side occupancy-feedback cadence (power of two): every N-th
/// put samples `len()` into the task controller for
/// `PidInput::OccupancyError`.
const OCC_FEEDBACK: u64 = 16;

/// Which queue implementation [`crate::RuntimeBuilder`] constructs for a
/// declared queue node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueueBackend {
    /// Mutex + condvar [`Queue`]: unbounded, per-item
    /// lineage tracing, DGC purge. The default and the semantic oracle.
    #[default]
    Mutex,
    /// Lock-free [`LfQueue`]: bounded MPMC ring + epoch
    /// parking. Puts block at `capacity` (backpressure); no per-item
    /// trace events; DGC purge is a no-op (accepted divergences,
    /// DESIGN.md §14).
    LockFree {
        /// Ring capacity (rounded up to a power of two by the ring).
        capacity: usize,
    },
}

impl QueueBackend {
    /// The lock-free backend with [`DEFAULT_LF_CAPACITY`].
    #[must_use]
    pub fn lock_free() -> Self {
        QueueBackend::LockFree {
            capacity: DEFAULT_LF_CAPACITY,
        }
    }

    #[must_use]
    pub fn is_lock_free(&self) -> bool {
        matches!(self, QueueBackend::LockFree { .. })
    }
}

pub(crate) enum OutInner<T: ItemData> {
    Mutex(MutexQueueOutput<T>),
    LockFree(LfQueueOutput<T>),
}

/// Backend-agnostic producer endpoint for a queue, handed out by
/// [`crate::RuntimeBuilder::connect_queue_out`]. Same task-body code
/// works over the mutex and the lock-free backend.
pub struct QueueOutput<T: ItemData> {
    inner: OutInner<T>,
    /// Put counter for the sampled occupancy observation.
    ops: u64,
}

impl<T: ItemData> QueueOutput<T> {
    pub(crate) fn from_mutex(out: MutexQueueOutput<T>) -> Self {
        QueueOutput {
            inner: OutInner::Mutex(out),
            ops: 0,
        }
    }

    pub(crate) fn from_lock_free(out: LfQueueOutput<T>) -> Self {
        QueueOutput {
            inner: OutInner::LockFree(out),
            ops: 0,
        }
    }

    /// Enqueue an item, folding the queue's summary-STP back into the
    /// producing thread and (every `OCC_FEEDBACK`-th put) feeding the
    /// queue occupancy to the task controller for
    /// `PidInput::OccupancyError`.
    pub fn put(&mut self, ctx: &mut TaskCtx, ts: Timestamp, value: T) -> Result<(), StampedeError> {
        match &mut self.inner {
            OutInner::Mutex(o) => o.put(ctx, ts, value)?,
            OutInner::LockFree(o) => o.put(ctx, ts, value)?,
        }
        self.observe_occupancy(ctx);
        Ok(())
    }

    /// Batch enqueue: whole batch in one buffer operation, one backward
    /// feedback fold, one occupancy observation at most.
    pub fn put_batch(
        &mut self,
        ctx: &mut TaskCtx,
        batch: impl IntoIterator<Item = (Timestamp, T)>,
    ) -> Result<(), StampedeError> {
        match &mut self.inner {
            OutInner::Mutex(o) => o.put_batch(ctx, batch)?,
            OutInner::LockFree(o) => o.put_batch(ctx, batch)?,
        }
        self.observe_occupancy(ctx);
        Ok(())
    }

    fn observe_occupancy(&mut self, ctx: &mut TaskCtx) {
        self.ops = self.ops.wrapping_add(1);
        if self.ops & (OCC_FEEDBACK - 1) == 0 {
            let occ = self.len();
            ctx.observe_occupancy(occ);
        }
    }

    #[must_use]
    pub fn node(&self) -> aru_core::NodeId {
        match &self.inner {
            OutInner::Mutex(o) => o.queue().node(),
            OutInner::LockFree(o) => o.queue().node(),
        }
    }

    /// Items currently queued (lock-free read on both backends).
    #[must_use]
    pub fn len(&self) -> usize {
        match &self.inner {
            OutInner::Mutex(o) => o.queue().len(),
            OutInner::LockFree(o) => o.queue().len(),
        }
    }

    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes currently held (lock-free read on both backends).
    #[must_use]
    pub fn live_bytes(&self) -> u64 {
        match &self.inner {
            OutInner::Mutex(o) => o.queue().live_bytes(),
            OutInner::LockFree(o) => o.queue().live_bytes(),
        }
    }

    #[must_use]
    pub fn is_lock_free(&self) -> bool {
        matches!(self.inner, OutInner::LockFree(_))
    }

    /// The underlying mutex queue, when this endpoint runs on the mutex
    /// backend (monitoring / differential tests).
    #[must_use]
    pub fn mutex_queue(&self) -> Option<Arc<Queue<T>>> {
        match &self.inner {
            OutInner::Mutex(o) => Some(o.queue_arc()),
            OutInner::LockFree(_) => None,
        }
    }

    /// The underlying lock-free queue, when this endpoint runs on the
    /// lock-free backend.
    #[must_use]
    pub fn lf_queue(&self) -> Option<Arc<LfQueue<T>>> {
        match &self.inner {
            OutInner::Mutex(_) => None,
            OutInner::LockFree(o) => Some(o.queue_arc()),
        }
    }
}

pub(crate) enum InInner<T: ItemData> {
    Mutex(MutexQueueInput<T>),
    LockFree(LfQueueInput<T>),
}

/// Backend-agnostic consumer endpoint for a queue, handed out by
/// [`crate::RuntimeBuilder::connect_queue_in`]. Gets return
/// [`StampedItem`] on both backends: the mutex queue stores `Arc<T>`
/// payloads; the lock-free ring stores payloads inline and wraps them on
/// the way out (same one-allocation-per-item budget, paid at get instead
/// of put).
pub struct QueueInput<T: ItemData> {
    inner: InInner<T>,
}

impl<T: ItemData> QueueInput<T> {
    pub(crate) fn from_mutex(inp: MutexQueueInput<T>) -> Self {
        QueueInput {
            inner: InInner::Mutex(inp),
        }
    }

    pub(crate) fn from_lock_free(inp: LfQueueInput<T>) -> Self {
        QueueInput {
            inner: InInner::LockFree(inp),
        }
    }

    /// Blocking FIFO get (destructive: each item reaches one consumer).
    pub fn get(&mut self, ctx: &mut TaskCtx) -> Result<StampedItem<T>, StampedeError> {
        match &mut self.inner {
            InInner::Mutex(i) => i.get(ctx),
            InInner::LockFree(i) => {
                let item = i.get(ctx)?;
                Ok(StampedItem {
                    ts: item.ts,
                    value: Arc::new(item.value),
                })
            }
        }
    }

    /// Non-blocking FIFO get.
    pub fn try_get(&mut self, ctx: &mut TaskCtx) -> Result<Option<StampedItem<T>>, StampedeError> {
        match &mut self.inner {
            InInner::Mutex(i) => i.try_get(ctx),
            InInner::LockFree(i) => Ok(i.try_get(ctx)?.map(|item| StampedItem {
                ts: item.ts,
                value: Arc::new(item.value),
            })),
        }
    }

    /// Drain-style batch dequeue: block while empty, then pop up to `max`
    /// items in FIFO order.
    pub fn get_batch(
        &mut self,
        ctx: &mut TaskCtx,
        max: usize,
    ) -> Result<Vec<StampedItem<T>>, StampedeError> {
        match &mut self.inner {
            InInner::Mutex(i) => i.get_batch(ctx, max),
            InInner::LockFree(i) => Ok(i
                .get_batch(ctx, max)?
                .into_iter()
                .map(|item| StampedItem {
                    ts: item.ts,
                    value: Arc::new(item.value),
                })
                .collect()),
        }
    }

    #[must_use]
    pub fn node(&self) -> aru_core::NodeId {
        match &self.inner {
            InInner::Mutex(i) => i.queue().node(),
            InInner::LockFree(i) => i.queue().node(),
        }
    }

    #[must_use]
    pub fn is_lock_free(&self) -> bool {
        matches!(self.inner, InInner::LockFree(_))
    }
}
