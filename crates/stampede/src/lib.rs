//! A Stampede-like threaded runtime for pipelined streaming applications,
//! with the paper's ARU feedback mechanism built in.
//!
//! This crate reimplements the subset of the Stampede cluster programming
//! system (Nikhil, Ramachandran et al.) that the ARU paper's mechanism and
//! evaluation rely on:
//!
//! * **timestamped channels** ([`channel::Channel`]) — system-named buffers
//!   of `(virtual timestamp, item)` pairs with *non-destructive*,
//!   out-of-order, get-latest access and per-consumer consumption state;
//! * **timestamped queues** ([`queue::Queue`]) — FIFO buffers with
//!   destructive gets;
//! * **task threads** ([`task`]) — each application task runs the canonical
//!   Stampede loop (get inputs → compute → put outputs →
//!   `periodicity_sync()`), driven by a user closure;
//! * **ARU feedback** — summary-STP values are piggybacked on every
//!   `put`/`get` exactly as in §3.3.2: a consumer hands its summary to the
//!   channel on `get`; the channel hands its compressed summary back to the
//!   producer as the return value of `put`; source threads pace themselves;
//! * **garbage collection** ([`runtime`]'s GC driver) — inline REF-floor
//!   purging on every operation plus a periodic Dead-Timestamp GC pass that
//!   propagates guarantees across the whole task graph and feeds the
//!   computation-elimination hook [`task::TaskCtx::should_skip`];
//! * **measurement** — every allocation, free, get, iteration and sink
//!   output is recorded into an [`aru_metrics::Trace`] for the paper's
//!   postmortem analyses.
//!
//! # Quick example
//!
//! ```
//! use stampede::prelude::*;
//! use vtime::{Micros, Timestamp};
//!
//! let mut b = RuntimeBuilder::new(AruConfig::aru_min(), GcMode::Dgc);
//! let ch = b.channel::<Vec<u8>>("frames");
//! let src = b.thread("producer");
//! let snk = b.thread("consumer");
//! let out = b.connect_out(src, &ch).unwrap();
//! let mut inp = b.connect_in(&ch, snk).unwrap();
//!
//! let mut ts = Timestamp::ZERO;
//! b.spawn(src, move |ctx| {
//!     out.put(ctx, ts, vec![0u8; 64])?;
//!     ts = ts.next();
//!     Ok(Step::Continue)
//! });
//! b.spawn(snk, move |ctx| {
//!     let item = inp.get_latest(ctx)?;
//!     ctx.emit_output(item.ts);
//!     Ok(Step::Continue)
//! });
//!
//! let report = b.build().unwrap().run_for(Micros::from_millis(30)).unwrap();
//! assert!(report.outputs() > 0);
//! ```

pub mod backend;
#[doc(hidden)]
pub mod bench_api;
pub mod builder;
pub mod channel;
pub mod error;
pub mod fanout;
pub mod item;
pub mod lfqueue;
pub mod net;
pub mod queue;
mod ring;
pub mod runtime;
mod seqlock;
pub mod shutdown;
mod store;
pub mod sync;
pub mod task;
mod tele;

#[cfg(all(loom, test))]
mod loom_tests;

pub use backend::{QueueBackend, QueueInput, QueueOutput};
pub use builder::{BuildError, ChannelRef, QueueRef, RuntimeBuilder, ThreadRef};
pub use channel::{Channel, Input, Output};
pub use fanout::FanOut;
pub use error::{Step, StampedeError, TaskResult};
pub use item::{ItemData, Record, StampedItem};
pub use lfqueue::{LfItem, LfQueue, LfQueueInput, LfQueueOutput};
pub use net::{LinkModel, NetworkSim, RemoteOutput};
pub use queue::{MutexQueueInput, MutexQueueOutput, Queue};
pub use runtime::{BoxedJoinError, RunAnalysis, RunReport, Running, Runtime};
pub use task::TaskCtx;

/// Common imports for application code.
pub mod prelude {
    pub use crate::backend::{QueueBackend, QueueInput, QueueOutput};
    pub use crate::builder::{ChannelRef, QueueRef, RuntimeBuilder, ThreadRef};
    pub use crate::channel::{Input, Output};
    pub use crate::fanout::FanOut;
    pub use crate::error::{Step, StampedeError, TaskResult};
    pub use crate::item::{ItemData, Record, StampedItem};
    pub use crate::lfqueue::{LfItem, LfQueueInput, LfQueueOutput};
    pub use crate::runtime::{RunAnalysis, RunReport, Runtime};
    pub use crate::task::TaskCtx;
    pub use aru_core::{AruConfig, CompressOp, PacingPolicy, RetryPolicy};
    pub use aru_gc::GcMode;
}
