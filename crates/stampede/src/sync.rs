//! Synchronization shim: every lock, condvar, and guard the runtime's hot
//! path uses comes from this module, never from `parking_lot` directly.
//!
//! Normally the types are re-exports of `parking_lot` (the production
//! path). Under `RUSTFLAGS="--cfg loom"` they are thin parking_lot-shaped
//! wrappers over `loom`'s model-checked primitives instead, so `Channel`,
//! `Queue`, `NetworkSim`, and `Shutdown` compile unchanged against the
//! loom scheduler and their lock/condvar protocols can be exhaustively
//! explored by the tests in `loom_tests.rs` (run with
//! `RUSTFLAGS="--cfg loom" cargo test -p stampede --lib loom_`).
//!
//! `aru-metrics` has the mirror shim for the trace recorder
//! (`aru_metrics::sync`). See DESIGN.md §10 for the lane matrix.

#[cfg(not(loom))]
pub use parking_lot::{Condvar, Mutex, MutexGuard, RwLock, WaitTimeoutResult};

#[cfg(loom)]
pub use self::loom_shim::{Condvar, Mutex, MutexGuard, RwLock, WaitTimeoutResult};

/// Atomic types routed through the same cfg switch as the locks, so the
/// lock-free ring and seqlock (DESIGN.md §14) model-check under the same
/// loom lane as the blocking protocols. The vendored loom stand-in
/// executes every ordering as SeqCst; the `Ordering` re-export keeps the
/// production orderings in the source where they are reviewed, while the
/// model checks the SC over-approximation.
///
/// The loom stand-in implements `load`/`store`/`swap`/`compare_exchange`
/// (plus `fetch_add`/`fetch_sub` on the integer types) — richer RMWs
/// (`fetch_max`, `fetch_or`) must be written as `compare_exchange` loops
/// by callers that need to model-check.
pub mod atomic {
    #[cfg(not(loom))]
    pub use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};

    #[cfg(loom)]
    pub use loom::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
}

#[cfg(loom)]
mod loom_shim {
    //! parking_lot-shaped facade over `loom::sync`.
    //!
    //! The API difference being papered over: parking_lot's `lock()`
    //! returns the guard directly (no `Result`), and its `Condvar` waits
    //! on `&mut MutexGuard` instead of consuming and returning the guard.
    //! The guard therefore holds the loom guard in an `Option` that a wait
    //! temporarily takes — the same trick the vendored `parking_lot` shim
    //! plays over `std::sync`.

    use std::fmt;
    use std::ops::{Deref, DerefMut};
    use std::sync::PoisonError;
    use std::time::Duration;

    /// Model-checked mutex with the parking_lot API.
    pub struct Mutex<T> {
        inner: loom::sync::Mutex<T>,
    }

    impl<T> Mutex<T> {
        pub fn new(value: T) -> Self {
            Mutex {
                inner: loom::sync::Mutex::new(value),
            }
        }

        pub fn lock(&self) -> MutexGuard<'_, T> {
            MutexGuard {
                inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
            }
        }

        pub fn into_inner(self) -> T {
            self.inner
                .into_inner()
                .unwrap_or_else(PoisonError::into_inner)
        }
    }

    impl<T: Default> Default for Mutex<T> {
        fn default() -> Self {
            Mutex::new(T::default())
        }
    }

    impl<T> fmt::Debug for Mutex<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Mutex")
        }
    }

    /// Guard for [`Mutex`]; the `Option` lets [`Condvar`] take it across a
    /// wait.
    pub struct MutexGuard<'a, T> {
        inner: Option<loom::sync::MutexGuard<'a, T>>,
    }

    impl<T> Deref for MutexGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            self.inner.as_ref().expect("guard present")
        }
    }

    impl<T> DerefMut for MutexGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            self.inner.as_mut().expect("guard present")
        }
    }

    /// Result of a timed condition-variable wait.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct WaitTimeoutResult {
        timed_out: bool,
    }

    impl WaitTimeoutResult {
        #[must_use]
        pub fn timed_out(&self) -> bool {
            self.timed_out
        }
    }

    /// Model-checked condvar with the parking_lot API. A modeled timed
    /// wait has no real clock: loom may fire the timeout at any scheduling
    /// point, which explores both the notified and the timed-out path.
    #[derive(Default)]
    pub struct Condvar {
        inner: loom::sync::Condvar,
    }

    impl Condvar {
        pub fn new() -> Self {
            Condvar {
                inner: loom::sync::Condvar::new(),
            }
        }

        pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
            let g = guard.inner.take().expect("guard present");
            let g = self.inner.wait(g).unwrap_or_else(PoisonError::into_inner);
            guard.inner = Some(g);
        }

        pub fn wait_for<T>(
            &self,
            guard: &mut MutexGuard<'_, T>,
            timeout: Duration,
        ) -> WaitTimeoutResult {
            let g = guard.inner.take().expect("guard present");
            let (g, res) = self
                .inner
                .wait_timeout(g, timeout)
                .unwrap_or_else(PoisonError::into_inner);
            guard.inner = Some(g);
            WaitTimeoutResult {
                timed_out: res.timed_out(),
            }
        }

        pub fn notify_one(&self) {
            self.inner.notify_one();
        }

        pub fn notify_all(&self) {
            self.inner.notify_all();
        }
    }

    impl fmt::Debug for Condvar {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Condvar")
        }
    }

    /// Model-checked reader-writer lock (exclusive under loom; see the
    /// loom stand-in's docs).
    pub struct RwLock<T> {
        inner: loom::sync::RwLock<T>,
    }

    impl<T> RwLock<T> {
        pub fn new(value: T) -> Self {
            RwLock {
                inner: loom::sync::RwLock::new(value),
            }
        }

        pub fn read(&self) -> loom::sync::RwLockReadGuard<'_, T> {
            self.inner.read().unwrap_or_else(PoisonError::into_inner)
        }

        pub fn write(&self) -> loom::sync::RwLockWriteGuard<'_, T> {
            self.inner.write().unwrap_or_else(PoisonError::into_inner)
        }
    }

    impl<T: Default> Default for RwLock<T> {
        fn default() -> Self {
            RwLock::new(T::default())
        }
    }

    impl<T> fmt::Debug for RwLock<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("RwLock")
        }
    }
}
