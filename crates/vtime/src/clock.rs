//! Pluggable time sources.
//!
//! The Stampede-like threaded runtime reads the wall clock; the
//! discrete-event simulator advances a [`ManualClock`] explicitly. Runtime
//! code that needs "now" (STP measurement, trace events, footprint samples)
//! is written against the [`Clock`] trait so both share one implementation.

use crate::timestamp::{Micros, SimTime};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A monotonic microsecond time source.
pub trait Clock: Send + Sync + 'static {
    /// Current time, microseconds since the start of the run.
    fn now(&self) -> SimTime;
}

/// Wall-clock time relative to clock construction.
#[derive(Debug, Clone)]
pub struct WallClock {
    epoch: Instant,
}

impl WallClock {
    #[must_use]
    pub fn new() -> Self {
        WallClock {
            epoch: Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for WallClock {
    fn now(&self) -> SimTime {
        SimTime(self.epoch.elapsed().as_micros().min(u128::from(u64::MAX)) as u64)
    }
}

/// A manually-advanced clock for deterministic simulation.
///
/// Cloning shares the underlying time cell, so a simulator engine can hold
/// one handle and hand clones to instrumented components.
#[derive(Debug, Clone, Default)]
pub struct ManualClock {
    micros: Arc<AtomicU64>,
}

impl ManualClock {
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the absolute time. Panics in debug builds if time would move
    /// backwards — the simulator must only advance.
    pub fn set(&self, t: SimTime) {
        let prev = self.micros.swap(t.0, Ordering::Release);
        debug_assert!(prev <= t.0, "ManualClock moved backwards: {prev} -> {}", t.0);
    }

    /// Advance by `d` and return the new time.
    pub fn advance(&self, d: Micros) -> SimTime {
        let now = self.micros.fetch_add(d.0, Ordering::AcqRel) + d.0;
        SimTime(now)
    }
}

impl Clock for ManualClock {
    fn now(&self) -> SimTime {
        SimTime(self.micros.load(Ordering::Acquire))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn wall_clock_is_monotonic_and_advances() {
        let c = WallClock::new();
        let a = c.now();
        thread::sleep(Duration::from_millis(2));
        let b = c.now();
        assert!(b > a);
        assert!(b.since(a) >= Micros(1_000), "slept 2ms, saw {}", b.since(a));
    }

    #[test]
    fn manual_clock_set_and_advance() {
        let c = ManualClock::new();
        assert_eq!(c.now(), SimTime::ZERO);
        c.set(SimTime(100));
        assert_eq!(c.now(), SimTime(100));
        let t = c.advance(Micros(50));
        assert_eq!(t, SimTime(150));
        assert_eq!(c.now(), SimTime(150));
    }

    #[test]
    fn manual_clock_clones_share_time() {
        let c = ManualClock::new();
        let c2 = c.clone();
        c.set(SimTime(42));
        assert_eq!(c2.now(), SimTime(42));
    }

    #[test]
    #[should_panic(expected = "moved backwards")]
    #[cfg(debug_assertions)]
    fn manual_clock_rejects_backwards() {
        let c = ManualClock::new();
        c.set(SimTime(10));
        c.set(SimTime(5));
    }
}
