//! Small statistics helpers used throughout the reproduction.

use serde::{Deserialize, Serialize};

/// Welford online mean/variance accumulator (unweighted samples).
///
/// Used for per-run summaries such as throughput and latency in Figure 10.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    #[must_use]
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    #[must_use]
    pub fn count(&self) -> u64 {
        self.n
    }

    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance.
    #[must_use]
    pub fn variance(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation — the paper reports population σ for
    /// jitter ("standard deviation of the time difference between successive
    /// output frames").
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    #[must_use]
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    #[must_use]
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }

    #[must_use]
    pub fn summary(&self) -> Summary {
        Summary {
            n: self.count(),
            mean: self.mean(),
            std_dev: self.std_dev(),
            min: self.min(),
            max: self.max(),
        }
    }

    /// Merge another accumulator into this one (parallel Welford merge).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n = (self.n + other.n) as f64;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n;
        let m2 = self.m2 + other.m2 + delta * delta * self.n as f64 * other.n as f64 / n;
        self.n += other.n;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A frozen statistical summary.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    pub n: u64,
    pub mean: f64,
    pub std_dev: f64,
    pub min: f64,
    pub max: f64,
}

impl Summary {
    pub const EMPTY: Summary = Summary {
        n: 0,
        mean: 0.0,
        std_dev: 0.0,
        min: 0.0,
        max: 0.0,
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9 * (1.0 + a.abs() + b.abs())
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = OnlineStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.std_dev(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
    }

    #[test]
    fn known_values() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert!(close(s.mean(), 5.0));
        assert!(close(s.std_dev(), 2.0)); // classic population-σ example
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut all = OnlineStats::new();
        for &x in &xs {
            all.push(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &xs[..37] {
            a.push(x);
        }
        for &x in &xs[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!(close(a.mean(), all.mean()));
        assert!(close(a.variance(), all.variance()));
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.push(1.0);
        a.push(3.0);
        let before = a.summary();
        a.merge(&OnlineStats::new());
        assert_eq!(a.summary(), before);

        let mut e = OnlineStats::new();
        e.merge(&a);
        assert_eq!(e.summary(), before);
    }
}
