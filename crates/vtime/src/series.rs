//! Time-weighted series: the paper's memory-footprint integrals.
//!
//! Section 4 of the paper defines the mean memory footprint as
//!
//! ```text
//! MUμ = Σ( MU_{t_{i+1}} · (t_{i+1} − t_i) ) / (t_N − t_0)
//! MUσ = sqrt( Σ( (MUμ − MU_{t_{i+1}})² · (t_{i+1} − t_i) ) / (t_N − t_0) )
//! ```
//!
//! i.e. a step function integrated over time. [`TimeWeightedSeries`] records
//! `(time, value)` step samples and computes exactly these quantities, plus
//! downsampled views for the Figure 8/9 time-series plots.

use crate::stats::Summary;
use crate::timestamp::{Micros, SimTime};
use serde::{Deserialize, Serialize};

/// A right-continuous step function sampled at change points.
///
/// `push(t, v)` means "from time `t` onwards the value is `v`". Pushes must
/// be time-monotonic (equal times replace the value at that instant).
///
/// ```
/// use vtime::{SimTime, TimeWeightedSeries};
/// let mut s = TimeWeightedSeries::new();
/// s.push(SimTime(0), 10.0);   // 10 bytes live on [0, 10)
/// s.push(SimTime(10), 30.0);  // 30 bytes live on [10, 20)
/// let mu = s.weighted_summary(SimTime(20));
/// assert_eq!(mu.mean, 20.0);    // the paper's MUμ
/// assert_eq!(mu.std_dev, 10.0); // the paper's MUσ
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TimeWeightedSeries {
    points: Vec<(SimTime, f64)>,
}

impl TimeWeightedSeries {
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Record that the value becomes `v` at time `t`.
    ///
    /// # Panics
    /// Panics if `t` precedes the last recorded time (debug builds).
    pub fn push(&mut self, t: SimTime, v: f64) {
        if let Some(last) = self.points.last_mut() {
            debug_assert!(last.0 <= t, "series time went backwards");
            if last.0 == t {
                last.1 = v;
                return;
            }
            // Collapse consecutive identical values to bound memory: the
            // tracker run emits millions of alloc/free events but the
            // footprint often revisits the same level.
            if (last.1 - v).abs() < f64::EPSILON {
                return;
            }
        }
        self.points.push((t, v));
    }

    /// Number of stored change points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Raw change points (time, value).
    #[must_use]
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// Value at time `t` (the most recent change point at or before `t`);
    /// 0.0 before the first point.
    #[must_use]
    pub fn value_at(&self, t: SimTime) -> f64 {
        match self.points.partition_point(|&(pt, _)| pt <= t) {
            0 => 0.0,
            i => self.points[i - 1].1,
        }
    }

    /// Maximum value ever recorded (peak footprint).
    #[must_use]
    pub fn peak(&self) -> f64 {
        self.points.iter().map(|&(_, v)| v).fold(0.0, f64::max)
    }

    /// Time-weighted integral statistics over `[t0, t_end]`, where `t0` is
    /// the first change point and `t_end` is supplied by the caller (end of
    /// run). Returns [`Summary::EMPTY`] for an empty window.
    #[must_use]
    pub fn weighted_summary(&self, t_end: SimTime) -> Summary {
        if self.points.is_empty() {
            return Summary::EMPTY;
        }
        let t0 = self.points[0].0;
        if t_end <= t0 {
            return Summary::EMPTY;
        }
        let total = t_end.since(t0).as_micros() as f64;
        let mut mean_acc = 0.0;
        let mut n = 0u64;
        for w in self.windows(t_end) {
            mean_acc += w.value * w.width.as_micros() as f64;
            n += 1;
        }
        let mean = mean_acc / total;
        let mut var_acc = 0.0;
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for w in self.windows(t_end) {
            let d = w.value - mean;
            var_acc += d * d * w.width.as_micros() as f64;
            min = min.min(w.value);
            max = max.max(w.value);
        }
        Summary {
            n,
            mean,
            std_dev: (var_acc / total).sqrt(),
            min,
            max,
        }
    }

    fn windows(&self, t_end: SimTime) -> impl Iterator<Item = Window> + '_ {
        let pts = &self.points;
        (0..pts.len()).filter_map(move |i| {
            let (t, v) = pts[i];
            let next = if i + 1 < pts.len() { pts[i + 1].0 } else { t_end };
            let next = next.min(t_end);
            if next <= t {
                return None;
            }
            Some(Window {
                value: v,
                width: next.since(t),
            })
        })
    }

    /// Downsample to at most `buckets` points by averaging within equal time
    /// buckets over `[first, t_end]` — used to emit plottable Figure 8/9
    /// series without millions of rows.
    #[must_use]
    pub fn downsample(&self, t_end: SimTime, buckets: usize) -> Vec<(SimTime, f64)> {
        if self.points.is_empty() || buckets == 0 {
            return Vec::new();
        }
        let t0 = self.points[0].0;
        let span = t_end.since(t0).as_micros();
        if span == 0 {
            return vec![(t0, self.points[0].1)];
        }
        let bucket_w = span.div_ceil(buckets as u64).max(1);
        let mut out = Vec::with_capacity(buckets);
        let mut acc = 0.0f64;
        let mut acc_w = 0u64;
        let mut bucket_end = t0 + Micros(bucket_w);
        for w in self.windows_bounded(t_end) {
            let (mut start, value) = (w.0, w.2);
            let end = w.1;
            while start < end {
                let seg_end = end.min(bucket_end);
                let width = seg_end.since(start).as_micros();
                acc += value * width as f64;
                acc_w += width;
                start = seg_end;
                if start >= bucket_end {
                    if acc_w > 0 {
                        out.push((bucket_end, acc / acc_w as f64));
                    }
                    acc = 0.0;
                    acc_w = 0;
                    bucket_end = bucket_end + Micros(bucket_w);
                }
            }
        }
        if acc_w > 0 {
            out.push((bucket_end, acc / acc_w as f64));
        }
        out
    }

    fn windows_bounded(&self, t_end: SimTime) -> impl Iterator<Item = (SimTime, SimTime, f64)> + '_ {
        let pts = &self.points;
        (0..pts.len()).filter_map(move |i| {
            let (t, v) = pts[i];
            let next = if i + 1 < pts.len() { pts[i + 1].0 } else { t_end };
            let next = next.min(t_end);
            (next > t).then_some((t, next, v))
        })
    }
}

struct Window {
    value: f64,
    width: Micros,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9 * (1.0 + a.abs() + b.abs())
    }

    #[test]
    fn empty_series() {
        let s = TimeWeightedSeries::new();
        assert!(s.is_empty());
        assert_eq!(s.weighted_summary(SimTime(100)), Summary::EMPTY);
        assert_eq!(s.value_at(SimTime(5)), 0.0);
        assert_eq!(s.peak(), 0.0);
    }

    #[test]
    fn step_function_mean() {
        // value 10 on [0,10), 30 on [10,20) -> mean 20 over [0,20)
        let mut s = TimeWeightedSeries::new();
        s.push(SimTime(0), 10.0);
        s.push(SimTime(10), 30.0);
        let sum = s.weighted_summary(SimTime(20));
        assert!(close(sum.mean, 20.0));
        assert!(close(sum.std_dev, 10.0));
        assert_eq!(sum.min, 10.0);
        assert_eq!(sum.max, 30.0);
    }

    #[test]
    fn paper_formula_spotcheck() {
        // MU values 5 (width 2), 1 (width 8): mean = (5*2 + 1*8)/10 = 1.8
        let mut s = TimeWeightedSeries::new();
        s.push(SimTime(100), 5.0);
        s.push(SimTime(102), 1.0);
        let sum = s.weighted_summary(SimTime(110));
        assert!(close(sum.mean, 1.8));
        let var = ((5.0f64 - 1.8).powi(2) * 2.0 + (1.0f64 - 1.8).powi(2) * 8.0) / 10.0;
        assert!(close(sum.std_dev, var.sqrt()));
    }

    #[test]
    fn value_at_and_peak() {
        let mut s = TimeWeightedSeries::new();
        s.push(SimTime(10), 1.0);
        s.push(SimTime(20), 5.0);
        s.push(SimTime(30), 2.0);
        assert_eq!(s.value_at(SimTime(5)), 0.0);
        assert_eq!(s.value_at(SimTime(10)), 1.0);
        assert_eq!(s.value_at(SimTime(25)), 5.0);
        assert_eq!(s.value_at(SimTime(99)), 2.0);
        assert_eq!(s.peak(), 5.0);
    }

    #[test]
    fn equal_time_replaces() {
        let mut s = TimeWeightedSeries::new();
        s.push(SimTime(10), 1.0);
        s.push(SimTime(10), 7.0);
        assert_eq!(s.len(), 1);
        assert_eq!(s.value_at(SimTime(10)), 7.0);
    }

    #[test]
    fn identical_values_collapse() {
        let mut s = TimeWeightedSeries::new();
        s.push(SimTime(10), 3.0);
        s.push(SimTime(20), 3.0);
        s.push(SimTime(30), 4.0);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn downsample_preserves_mean() {
        let mut s = TimeWeightedSeries::new();
        for i in 0..1000u64 {
            s.push(SimTime(i * 10), (i % 7) as f64);
        }
        let t_end = SimTime(10_000);
        let exact = s.weighted_summary(t_end).mean;
        let ds = s.downsample(t_end, 50);
        assert!(ds.len() <= 51);
        // bucket means, equally weighted, approximate the global mean
        let approx: f64 = ds.iter().map(|&(_, v)| v).sum::<f64>() / ds.len() as f64;
        assert!((approx - exact).abs() < 0.5, "approx {approx} vs exact {exact}");
    }

    #[test]
    fn summary_window_clamps_to_t_end() {
        let mut s = TimeWeightedSeries::new();
        s.push(SimTime(0), 2.0);
        s.push(SimTime(100), 50.0); // after t_end, ignored
        let sum = s.weighted_summary(SimTime(50));
        assert!(close(sum.mean, 2.0));
    }
}
