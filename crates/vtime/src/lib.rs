//! Virtual-time substrate for the Stampede/ARU reproduction.
//!
//! Streaming pipelines in the ARU paper index every data item by a
//! *timestamp* — a point in the application's virtual time (usually a frame
//! number). This crate provides:
//!
//! * [`Timestamp`] — the virtual-time index attached to every item,
//! * [`SimTime`] / [`Micros`] — physical (wall or simulated) time in
//!   microseconds, matching the paper's measurement granularity,
//! * [`Clock`] — a pluggable time source so the same runtime code can run on
//!   the wall clock (threaded runtime) or on a manually-advanced clock
//!   (discrete-event simulator),
//! * [`TimeWeightedSeries`] — the time-weighted mean/σ integrals the paper
//!   uses to summarize the application memory footprint (its `MUμ`/`MUσ`).

pub mod clock;
pub mod series;
pub mod stats;
pub mod timestamp;

pub use clock::{Clock, ManualClock, WallClock};
pub use series::TimeWeightedSeries;
pub use stats::{OnlineStats, Summary};
pub use timestamp::{Micros, SimTime, Timestamp};
