//! Core time types: virtual timestamps and microsecond-resolution physical time.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};
use std::time::Duration;

/// A point in the application's *virtual time*.
///
/// In Stampede every item put into a channel or queue carries a timestamp;
/// for a video pipeline this is typically the frame number assigned by the
/// source (digitizer) thread. Timestamps are totally ordered and sources
/// issue them monotonically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Timestamp(pub u64);

impl Timestamp {
    /// The first timestamp a source thread issues.
    pub const ZERO: Timestamp = Timestamp(0);

    /// The timestamp following this one.
    #[must_use]
    pub fn next(self) -> Timestamp {
        Timestamp(self.0 + 1)
    }

    /// Raw virtual-time value.
    #[must_use]
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Distance (in virtual ticks) from `earlier` to `self`.
    /// Returns 0 if `earlier` is not actually earlier.
    #[must_use]
    pub fn since(self, earlier: Timestamp) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ts{}", self.0)
    }
}

impl From<u64> for Timestamp {
    fn from(v: u64) -> Self {
        Timestamp(v)
    }
}

/// A duration in microseconds.
///
/// The paper reports all times (STP values, latency, jitter) at microsecond
/// granularity; 64 bits of microseconds cover ~584 thousand years, so
/// saturating arithmetic never matters in practice but keeps the type total.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Micros(pub u64);

impl Micros {
    pub const ZERO: Micros = Micros(0);

    #[must_use]
    pub fn from_millis(ms: u64) -> Micros {
        Micros(ms * 1_000)
    }

    #[must_use]
    pub fn from_secs(s: u64) -> Micros {
        Micros(s * 1_000_000)
    }

    #[must_use]
    pub fn from_secs_f64(s: f64) -> Micros {
        Micros((s.max(0.0) * 1e6).round() as u64)
    }

    #[must_use]
    pub fn as_micros(self) -> u64 {
        self.0
    }

    #[must_use]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Saturating subtraction.
    #[must_use]
    pub fn saturating_sub(self, rhs: Micros) -> Micros {
        Micros(self.0.saturating_sub(rhs.0))
    }

    /// Multiply by a non-negative scalar, saturating on overflow.
    #[must_use]
    pub fn mul_f64(self, k: f64) -> Micros {
        debug_assert!(k >= 0.0, "negative duration scale");
        let v = (self.0 as f64 * k).round();
        if v >= u64::MAX as f64 {
            Micros(u64::MAX)
        } else {
            Micros(v as u64)
        }
    }

    #[must_use]
    pub fn max(self, other: Micros) -> Micros {
        Micros(self.0.max(other.0))
    }

    #[must_use]
    pub fn min(self, other: Micros) -> Micros {
        Micros(self.0.min(other.0))
    }

    #[must_use]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add for Micros {
    type Output = Micros;
    fn add(self, rhs: Micros) -> Micros {
        Micros(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for Micros {
    fn add_assign(&mut self, rhs: Micros) {
        *self = *self + rhs;
    }
}

impl Sub for Micros {
    type Output = Micros;
    fn sub(self, rhs: Micros) -> Micros {
        Micros(self.0.saturating_sub(rhs.0))
    }
}

impl From<Duration> for Micros {
    fn from(d: Duration) -> Self {
        Micros(d.as_micros().min(u128::from(u64::MAX)) as u64)
    }
}

impl From<Micros> for Duration {
    fn from(m: Micros) -> Self {
        Duration::from_micros(m.0)
    }
}

impl fmt::Display for Micros {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

/// A point in physical time (wall clock or simulated), microseconds since
/// the start of the run.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(pub u64);

impl SimTime {
    pub const ZERO: SimTime = SimTime(0);

    #[must_use]
    pub fn as_micros(self) -> u64 {
        self.0
    }

    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Elapsed time since `earlier`. Zero if `earlier` is in the future
    /// (clock skew never produces negative durations).
    #[must_use]
    pub fn since(self, earlier: SimTime) -> Micros {
        Micros(self.0.saturating_sub(earlier.0))
    }
}

impl Add<Micros> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: Micros) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", Micros(self.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timestamp_ordering_and_next() {
        let a = Timestamp(3);
        assert!(a < a.next());
        assert_eq!(a.next().raw(), 4);
        assert_eq!(a.next().since(a), 1);
        assert_eq!(a.since(a.next()), 0, "since saturates");
    }

    #[test]
    fn micros_arithmetic_saturates() {
        let big = Micros(u64::MAX);
        assert_eq!(big + Micros(1), big);
        assert_eq!(Micros(1).saturating_sub(Micros(5)), Micros::ZERO);
        assert_eq!(Micros(3) - Micros(5), Micros::ZERO);
    }

    #[test]
    fn micros_conversions() {
        assert_eq!(Micros::from_millis(2).as_micros(), 2_000);
        assert_eq!(Micros::from_secs(1), Micros(1_000_000));
        assert!((Micros::from_secs_f64(0.5).as_secs_f64() - 0.5).abs() < 1e-9);
        let d: Duration = Micros(1500).into();
        assert_eq!(d, Duration::from_micros(1500));
        let m: Micros = Duration::from_millis(3).into();
        assert_eq!(m, Micros(3000));
    }

    #[test]
    fn micros_mul_f64() {
        assert_eq!(Micros(1000).mul_f64(1.5), Micros(1500));
        assert_eq!(Micros(1000).mul_f64(0.0), Micros::ZERO);
        assert_eq!(Micros(u64::MAX).mul_f64(2.0), Micros(u64::MAX));
    }

    #[test]
    fn simtime_since_and_add() {
        let t0 = SimTime(100);
        let t1 = t0 + Micros(50);
        assert_eq!(t1.since(t0), Micros(50));
        assert_eq!(t0.since(t1), Micros::ZERO);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Micros(12)), "12us");
        assert_eq!(format!("{}", Micros(1500)), "1.500ms");
        assert_eq!(format!("{}", Micros(2_500_000)), "2.500s");
        assert_eq!(format!("{}", Timestamp(7)), "ts7");
    }
}
