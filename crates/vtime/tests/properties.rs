//! Property-based tests for the time-weighted series (the paper's MUμ/MUσ
//! integrals) and the statistics helpers.

use proptest::prelude::*;
use vtime::{OnlineStats, SimTime, TimeWeightedSeries};

/// Brute-force time-weighted mean over a step function.
fn brute_mean(points: &[(u64, f64)], t_end: u64) -> f64 {
    if points.is_empty() || t_end <= points[0].0 {
        return 0.0;
    }
    let mut acc = 0.0;
    let total = (t_end - points[0].0) as f64;
    for (i, &(t, v)) in points.iter().enumerate() {
        let next = if i + 1 < points.len() {
            points[i + 1].0.min(t_end)
        } else {
            t_end
        };
        if next > t {
            acc += v * (next - t) as f64;
        }
    }
    acc / total
}

fn series_strategy() -> impl Strategy<Value = Vec<(u64, f64)>> {
    prop::collection::vec((1u64..1000, 0.0f64..1e6), 1..40).prop_map(|mut deltas| {
        // strictly increasing times with distinct values
        let mut t = 0u64;
        for d in &mut deltas {
            t += d.0;
            d.0 = t;
        }
        deltas
    })
}

proptest! {
    /// weighted_summary.mean matches a brute-force integral.
    #[test]
    fn weighted_mean_matches_bruteforce(points in series_strategy(), extra in 1u64..5000) {
        let mut s = TimeWeightedSeries::new();
        for &(t, v) in &points {
            s.push(SimTime(t), v);
        }
        let t_end = points.last().unwrap().0 + extra;
        let got = s.weighted_summary(SimTime(t_end)).mean;
        let want = brute_mean(&points, t_end);
        prop_assert!((got - want).abs() <= 1e-6 * (1.0 + want.abs()),
            "got {got}, want {want}");
    }

    /// The time-weighted mean lies within [min, max] of the values.
    #[test]
    fn weighted_mean_bounded(points in series_strategy()) {
        let mut s = TimeWeightedSeries::new();
        for &(t, v) in &points {
            s.push(SimTime(t), v);
        }
        let t_end = points.last().unwrap().0 + 100;
        let sum = s.weighted_summary(SimTime(t_end));
        let lo = points.iter().map(|p| p.1).fold(f64::INFINITY, f64::min);
        let hi = points.iter().map(|p| p.1).fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(sum.mean >= lo - 1e-9 && sum.mean <= hi + 1e-9);
        prop_assert!(sum.std_dev >= 0.0);
        prop_assert!(sum.std_dev <= (hi - lo) + 1e-9, "σ exceeds range");
    }

    /// value_at is right-continuous lookup of the latest change point.
    #[test]
    fn value_at_matches_definition(points in series_strategy(), probe in 0u64..50_000) {
        let mut s = TimeWeightedSeries::new();
        for &(t, v) in &points {
            s.push(SimTime(t), v);
        }
        let want = points
            .iter()
            .rev()
            .find(|&&(t, _)| t <= probe)
            .map_or(0.0, |&(_, v)| v);
        prop_assert_eq!(s.value_at(SimTime(probe)), want);
    }

    /// Downsampling bounds: at most `buckets + 1` points, each within the
    /// series' value range.
    #[test]
    fn downsample_bounds(points in series_strategy(), buckets in 1usize..64) {
        let mut s = TimeWeightedSeries::new();
        for &(t, v) in &points {
            s.push(SimTime(t), v);
        }
        let t_end = SimTime(points.last().unwrap().0 + 100);
        let ds = s.downsample(t_end, buckets);
        prop_assert!(ds.len() <= buckets + 1, "{} > {}", ds.len(), buckets + 1);
        let lo = points.iter().map(|p| p.1).fold(f64::INFINITY, f64::min);
        let hi = points.iter().map(|p| p.1).fold(f64::NEG_INFINITY, f64::max);
        for &(_, v) in &ds {
            prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
        }
    }

    /// OnlineStats merge is order-independent and matches sequential.
    #[test]
    fn online_stats_merge(xs in prop::collection::vec(-1e6f64..1e6, 1..100),
                          split in 0usize..100) {
        let split = split % xs.len();
        let mut whole = OnlineStats::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &xs[..split] {
            a.push(x);
        }
        for &x in &xs[split..] {
            b.push(x);
        }
        a.merge(&b);
        prop_assert_eq!(a.count(), whole.count());
        prop_assert!((a.mean() - whole.mean()).abs() < 1e-6 * (1.0 + whole.mean().abs()));
        prop_assert!((a.variance() - whole.variance()).abs()
            < 1e-6 * (1.0 + whole.variance().abs()));
    }
}
