//! Color models for target detection.
//!
//! Each Target-Detection thread tracks one color model (paper §4: "each
//! thread tracks a specific color model"). A model is a normalized RGB
//! histogram of the target's appearance; detection back-projects it onto
//! the frame.

use crate::types::{rgb_bin, HIST_BINS};
use crate::video::{SyntheticVideo, Target};

/// A normalized color histogram describing one target.
#[derive(Debug, Clone, PartialEq)]
pub struct ColorModel {
    pub id: u32,
    pub bins: Vec<f32>,
}

impl ColorModel {
    /// Build a model from a target descriptor by sampling its shaded color
    /// patch (the same shading the video generator applies).
    #[must_use]
    pub fn from_target(id: u32, t: &Target) -> Self {
        let mut bins = vec![0.0f32; HIST_BINS];
        let mut count = 0.0f32;
        for y in 0..16usize {
            for x in 0..16usize {
                let shade = ((x ^ y) & 7) as i16 - 3;
                let r = (t.color.0 as i16 + shade).clamp(0, 255) as u8;
                let g = (t.color.1 as i16 + shade).clamp(0, 255) as u8;
                let b = (t.color.2 as i16 + shade).clamp(0, 255) as u8;
                bins[rgb_bin(r, g, b) as usize] += 1.0;
                count += 1.0;
            }
        }
        for v in &mut bins {
            *v /= count;
        }
        ColorModel { id, bins }
    }

    /// The standard pair of models for the two-person scene.
    #[must_use]
    pub fn scene_models(video: &SyntheticVideo) -> Vec<ColorModel> {
        (0..video.target_count())
            .map(|i| ColorModel::from_target(i as u32, video.target(i)))
            .collect()
    }

    /// Likelihood weight of an RGB histogram bin under this model.
    #[inline]
    #[must_use]
    pub fn weight(&self, bin: u32) -> f32 {
        self.bins[bin as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_is_normalized() {
        let v = SyntheticVideo::two_person_scene(1);
        let m = ColorModel::from_target(0, v.target(0));
        let sum: f32 = m.bins.iter().sum();
        assert!((sum - 1.0).abs() < 1e-4, "sum {sum}");
    }

    #[test]
    fn model_peaks_at_target_color() {
        let v = SyntheticVideo::two_person_scene(1);
        let t = v.target(0);
        let m = ColorModel::from_target(0, t);
        let bin = rgb_bin(t.color.0, t.color.1, t.color.2);
        assert!(m.weight(bin) > 0.2, "weight {}", m.weight(bin));
    }

    #[test]
    fn distinct_targets_have_distinct_models() {
        let v = SyntheticVideo::two_person_scene(1);
        let models = ColorModel::scene_models(&v);
        assert_eq!(models.len(), 2);
        let t0 = v.target(0).color;
        let t1 = v.target(1).color;
        // model 1 gives ~zero weight to model 0's color
        assert!(models[1].weight(rgb_bin(t0.0, t0.1, t0.2)) < 0.01);
        assert!(models[0].weight(rgb_bin(t1.0, t1.1, t1.2)) < 0.01);
    }
}
