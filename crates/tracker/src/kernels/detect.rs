//! Histogram back-projection target detection (the paper's Target
//! Detection task — one instance per color model).
//!
//! For every foreground pixel the frame's histogram bin is weighted by the
//! color model; an integral image over the weight map finds the window with
//! the highest model mass; the weighted centroid inside that window is the
//! reported location.

use crate::model::ColorModel;
use crate::types::{Frame, HistModel, MotionMask, TargetLocation, FRAME_H, FRAME_W};

/// Detection window half-size (matches the synthetic targets' scale).
const WIN_HALF: usize = 32;
/// Minimum back-projection mass for a positive detection.
const MIN_SCORE: f32 = 0.5;

/// Run detection for one color model on one frame's mask + histogram,
/// sampling the joined video frame to report the detection's mean color.
#[must_use]
pub fn detect_target(
    frame: &Frame,
    mask: &MotionMask,
    hist: &HistModel,
    model: &ColorModel,
) -> TargetLocation {
    // The frame join is exact; the histogram model may legitimately lag
    // (the detector takes the freshest model at or before its mask — the
    // color model evolves slowly).
    debug_assert_eq!(mask.frame_no, frame.frame_no, "frame join mismatch");
    let _ = hist.frame_no;
    // Back-project: weight map over foreground pixels.
    let mut weights = vec![0.0f32; FRAME_W * FRAME_H];
    for (p, w) in weights.iter_mut().enumerate() {
        if mask.mask[p] != 0 {
            *w = model.weight(hist.pixel_bins[p]);
        }
    }
    // Integral image.
    let mut integral = vec![0.0f64; (FRAME_W + 1) * (FRAME_H + 1)];
    for y in 0..FRAME_H {
        let mut row = 0.0f64;
        for x in 0..FRAME_W {
            row += weights[y * FRAME_W + x] as f64;
            integral[(y + 1) * (FRAME_W + 1) + (x + 1)] =
                integral[y * (FRAME_W + 1) + (x + 1)] + row;
        }
    }
    let window_sum = |x0: usize, y0: usize, x1: usize, y1: usize| -> f64 {
        let w = FRAME_W + 1;
        integral[y1 * w + x1] - integral[y0 * w + x1] - integral[y1 * w + x0]
            + integral[y0 * w + x0]
    };
    // Scan windows on a coarse grid, then refine with the centroid.
    let step = 8;
    let mut best = (0usize, 0usize, f64::MIN);
    let mut y = 0;
    while y + 2 * WIN_HALF < FRAME_H {
        let mut x = 0;
        while x + 2 * WIN_HALF < FRAME_W {
            let s = window_sum(x, y, x + 2 * WIN_HALF, y + 2 * WIN_HALF);
            if s > best.2 {
                best = (x, y, s);
            }
            x += step;
        }
        y += step;
    }
    let (bx, by, score) = best;
    if score < MIN_SCORE as f64 {
        return TargetLocation::not_found(mask.frame_no, model.id);
    }
    // Weighted centroid and mean frame color within the best window.
    let (mut sx, mut sy, mut sw, mut support) = (0.0f64, 0.0f64, 0.0f64, 0u32);
    let mut rgb_acc = [0.0f64; 3];
    for y in by..(by + 2 * WIN_HALF).min(FRAME_H) {
        for x in bx..(bx + 2 * WIN_HALF).min(FRAME_W) {
            let w = weights[y * FRAME_W + x] as f64;
            if w > 0.0 {
                sx += w * x as f64;
                sy += w * y as f64;
                sw += w;
                support += 1;
                let (r, g, b) = frame.pixel(x, y);
                rgb_acc[0] += r as f64;
                rgb_acc[1] += g as f64;
                rgb_acc[2] += b as f64;
            }
        }
    }
    if sw <= 0.0 {
        return TargetLocation::not_found(mask.frame_no, model.id);
    }
    TargetLocation {
        frame_no: mask.frame_no,
        model_id: model.id,
        found: 1,
        x: (sx / sw) as f32,
        y: (sy / sw) as f32,
        score: score as f32,
        bbox: [
            bx as f32,
            by as f32,
            (bx + 2 * WIN_HALF) as f32,
            (by + 2 * WIN_HALF) as f32,
        ],
        support,
        mean_rgb: [
            (rgb_acc[0] / support as f64) as f32,
            (rgb_acc[1] / support as f64) as f32,
            (rgb_acc[2] / support as f64) as f32,
        ],
        reserved: [0; 8],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::{build_histogram, subtract_background};
    use crate::video::SyntheticVideo;

    fn detect_frame(v: &SyntheticVideo, model_id: usize, frame_no: u64) -> TargetLocation {
        let bg = v.background_frame();
        let f = v.frame(frame_no);
        let mask = subtract_background(&bg, &f);
        let hist = build_histogram(&f);
        let models = ColorModel::scene_models(v);
        detect_target(&f, &mask, &hist, &models[model_id])
    }

    #[test]
    fn finds_target_near_ground_truth() {
        let v = SyntheticVideo::two_person_scene(5);
        for frame_no in [0u64, 40, 123] {
            for model in 0..2usize {
                let det = detect_frame(&v, model, frame_no);
                assert_eq!(det.found, 1, "model {model} frame {frame_no} not found");
                let gt = v.ground_truth(model, frame_no);
                let err = ((det.x as f64 - gt.cx).powi(2) + (det.y as f64 - gt.cy).powi(2)).sqrt();
                assert!(
                    err < 25.0,
                    "model {model} frame {frame_no}: error {err:.1}px (det {},{} vs gt {:.0},{:.0})",
                    det.x,
                    det.y,
                    gt.cx,
                    gt.cy
                );
            }
        }
    }

    #[test]
    fn models_do_not_cross_detect() {
        let v = SyntheticVideo::two_person_scene(5);
        let d0 = detect_frame(&v, 0, 60);
        let d1 = detect_frame(&v, 1, 60);
        let gt0 = v.ground_truth(0, 60);
        let gt1 = v.ground_truth(1, 60);
        let err00 = ((d0.x as f64 - gt0.cx).powi(2) + (d0.y as f64 - gt0.cy).powi(2)).sqrt();
        let err11 = ((d1.x as f64 - gt1.cx).powi(2) + (d1.y as f64 - gt1.cy).powi(2)).sqrt();
        assert!(err00 < 25.0 && err11 < 25.0, "{err00} {err11}");
    }

    #[test]
    fn mean_rgb_matches_target_color() {
        // The mean color sampled from the joined frame must match the
        // model's target color — this validates the exact-timestamp join
        // end-to-end (a mismatched frame would blur toward the background).
        let v = SyntheticVideo::two_person_scene(5);
        for model in 0..2usize {
            let det = detect_frame(&v, model, 33);
            assert_eq!(det.found, 1);
            let c = v.target(model).color;
            let want = [c.0 as f32, c.1 as f32, c.2 as f32];
            for (got, want) in det.mean_rgb.iter().zip(want) {
                assert!(
                    (got - want).abs() < 25.0,
                    "model {model}: mean_rgb {:?} vs target {:?}",
                    det.mean_rgb,
                    want
                );
            }
        }
    }

    #[test]
    fn absent_target_reports_not_found_while_other_tracks() {
        let v = SyntheticVideo::two_person_scene(5).with_absence(0, 0, 1000);
        let bg = v.background_frame();
        let f = v.frame(50);
        let mask = subtract_background(&bg, &f);
        let hist = build_histogram(&f);
        let models = ColorModel::scene_models(&v);
        let d0 = detect_target(&f, &mask, &hist, &models[0]);
        let d1 = detect_target(&f, &mask, &hist, &models[1]);
        assert_eq!(d0.found, 0, "absent target must not be found");
        assert_eq!(d1.found, 1, "present target still tracked");
    }

    #[test]
    fn empty_mask_reports_not_found() {
        let v = SyntheticVideo::two_person_scene(5);
        let f = v.frame(0);
        let hist = build_histogram(&f);
        let empty = MotionMask {
            frame_no: 0,
            mask: vec![0u8; FRAME_W * FRAME_H],
        };
        let models = ColorModel::scene_models(&v);
        let det = detect_target(&f, &empty, &hist, &models[0]);
        assert_eq!(det.found, 0);
    }
}
