//! Background differencing (the paper's Motion Mask / Background task).

use crate::types::{Frame, MotionMask, FRAME_PIXELS};

/// Summed absolute channel-difference threshold above which a pixel counts
/// as foreground. The synthetic video applies the same noise sample to all
/// three channels (max summed noise 3·12 = 36), so 60 rejects noise while
/// target pixels differ by hundreds.
pub const DIFF_THRESHOLD: i16 = 60;

/// Compute the motion mask of `frame` against the static `background`.
#[must_use]
pub fn subtract_background(background: &Frame, frame: &Frame) -> MotionMask {
    debug_assert_eq!(background.rgb.len(), frame.rgb.len());
    let mut mask = vec![0u8; FRAME_PIXELS];
    for (p, m) in mask.iter_mut().enumerate() {
        let i = 3 * p;
        let dr = (frame.rgb[i] as i16 - background.rgb[i] as i16).abs();
        let dg = (frame.rgb[i + 1] as i16 - background.rgb[i + 1] as i16).abs();
        let db = (frame.rgb[i + 2] as i16 - background.rgb[i + 2] as i16).abs();
        if dr + dg + db > DIFF_THRESHOLD {
            *m = 255;
        }
    }
    MotionMask {
        frame_no: frame.frame_no,
        mask,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::video::SyntheticVideo;

    #[test]
    fn mask_covers_targets_not_background() {
        let mut v = SyntheticVideo::two_person_scene(1);
        v.noise_amp = 0;
        let bg = v.background_frame();
        let f = v.frame(20);
        let m = subtract_background(&bg, &f);
        // the two targets cover ~2-4% of the frame
        let ratio = m.foreground_ratio();
        assert!(
            ratio > 0.01 && ratio < 0.10,
            "foreground ratio {ratio} out of range"
        );
        // target center is foreground
        let gt = v.ground_truth(0, 20);
        let idx = gt.cy as usize * crate::types::FRAME_W + gt.cx as usize;
        assert_eq!(m.mask[idx], 255);
        // far corner is background
        assert_eq!(m.mask[3], 0);
    }

    #[test]
    fn noise_is_rejected() {
        let v = SyntheticVideo::two_person_scene(1); // noise_amp = 12
        let bg = v.background_frame();
        let f = v.frame(20);
        let m = subtract_background(&bg, &f);
        assert!(
            m.foreground_ratio() < 0.15,
            "noise leaked into mask: {}",
            m.foreground_ratio()
        );
    }

    #[test]
    fn identical_frames_give_empty_mask() {
        let v = SyntheticVideo::two_person_scene(1);
        let bg = v.background_frame();
        let m = subtract_background(&bg, &bg);
        assert_eq!(m.foreground_ratio(), 0.0);
    }
}
