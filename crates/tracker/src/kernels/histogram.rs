//! Color-histogram construction (the paper's Histogram task).

use crate::types::{rgb_bin, Frame, HistModel, FRAME_PIXELS, HIST_BINS};

/// Build the color-histogram model of a frame: the normalized 512-bin
/// histogram and the per-pixel bin map the detector back-projects through.
#[must_use]
pub fn build_histogram(frame: &Frame) -> HistModel {
    let mut bins = vec![0.0f32; HIST_BINS];
    let mut pixel_bins = vec![0u32; FRAME_PIXELS];
    for (p, pb) in pixel_bins.iter_mut().enumerate() {
        let i = 3 * p;
        let bin = rgb_bin(frame.rgb[i], frame.rgb[i + 1], frame.rgb[i + 2]);
        *pb = bin;
        bins[bin as usize] += 1.0;
    }
    let total = FRAME_PIXELS as f32;
    for v in &mut bins {
        *v /= total;
    }
    HistModel {
        frame_no: frame.frame_no,
        bins,
        pixel_bins,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::video::SyntheticVideo;

    #[test]
    fn histogram_is_normalized() {
        let v = SyntheticVideo::two_person_scene(1);
        let h = build_histogram(&v.frame(0));
        let sum: f32 = h.bins.iter().sum();
        assert!((sum - 1.0).abs() < 1e-3, "sum {sum}");
        assert_eq!(h.pixel_bins.len(), FRAME_PIXELS);
    }

    #[test]
    fn pixel_bins_consistent_with_frame() {
        let v = SyntheticVideo::two_person_scene(1);
        let f = v.frame(3);
        let h = build_histogram(&f);
        for p in (0..FRAME_PIXELS).step_by(997) {
            let i = 3 * p;
            assert_eq!(
                h.pixel_bins[p],
                rgb_bin(f.rgb[i], f.rgb[i + 1], f.rgb[i + 2])
            );
        }
    }

    #[test]
    fn target_color_bin_has_mass() {
        let v = SyntheticVideo::two_person_scene(1);
        let f = v.frame(10);
        let h = build_histogram(&f);
        let c = v.target(0).color;
        let bin = rgb_bin(c.0, c.1, c.2) as usize;
        assert!(h.bins[bin] > 0.001, "target bin mass {}", h.bins[bin]);
    }
}
