//! The tracker's vision kernels — real pixel computation on synthetic
//! frames, so execution times are data-dependent exactly as the paper's
//! §3.1 describes ("computation is data-dependent (for example, looking for
//! a specific object in a video frame)").

pub mod background;
pub mod detect;
pub mod histogram;

pub use background::subtract_background;
pub use detect::detect_target;
pub use histogram::build_histogram;
