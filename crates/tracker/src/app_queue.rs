//! The tracker as a queue-backed work pipeline, runnable on either queue
//! backend (mutex oracle or lock-free ring).
//!
//! Where [`crate::app_threaded`] reproduces Figure 5's channel dataflow
//! (windowed `get_latest` / `get_exact` joins over timestamp sets — a
//! shape only channels can serve), this module wires the same kernels as
//! a *work queue* pipeline: every frame is processed exactly once, in
//! FIFO order, through destructive queue gets:
//!
//! ```text
//! digitizer ──Q1: Frame──▶ detector ──Q2: TargetLocation──▶ gui
//! ```
//!
//! The detector stage fuses change detection, histogram construction, and
//! both color models' target detection into one pass over the frame — the
//! tracker's full per-frame compute, so queue backpressure and ARU pacing
//! act on genuinely data-dependent service times.
//!
//! The pipeline is parameterized by [`stampede::QueueBackend`]: the same
//! graph runs on the mutex queue and on the lock-free ring, which is what
//! the differential tests here exercise — delivery, detection accuracy,
//! ARU backlog control, and supervised restarts must hold on both.

use crate::app_threaded::StageDelays;
use crate::kernels::{build_histogram, detect_target, subtract_background};
use crate::model::ColorModel;
use crate::types::{Frame, TargetLocation};
use crate::video::SyntheticVideo;
use aru_core::{AruConfig, RetryPolicy};
use aru_gc::GcMode;
use parking_lot::Mutex;
use stampede::{BuildError, QueueBackend, Runtime, RuntimeBuilder, Step};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use vtime::{Micros, Timestamp};

/// Parameters for a queue-backed tracker run.
#[derive(Debug, Clone)]
pub struct QueueTrackerParams {
    pub aru: AruConfig,
    pub gc: GcMode,
    pub seed: u64,
    /// Which queue implementation backs both pipeline queues.
    pub backend: QueueBackend,
    /// Ring capacity for the lock-free backend's frame queue — also the
    /// hard backpressure bound when ARU is disabled.
    pub capacity: usize,
    /// Extra per-stage compute delays (same semantics as the threaded app).
    pub delays: StageDelays,
    /// Supervised-restart policy for the task threads.
    pub retry: RetryPolicy,
    /// Crash the digitizer once at this frame number (restart testing).
    pub crash_digitizer_at: Option<u64>,
}

impl QueueTrackerParams {
    #[must_use]
    pub fn new(aru: AruConfig, backend: QueueBackend) -> Self {
        QueueTrackerParams {
            aru,
            gc: GcMode::Ref,
            seed: 1,
            backend,
            capacity: 64,
            delays: StageDelays::default(),
            retry: RetryPolicy::none(),
            crash_digitizer_at: None,
        }
    }
}

/// A built queue-backed tracker plus live observation hooks.
pub struct QueueTracker {
    pub runtime: Runtime,
    /// Detections observed by the GUI task, in arrival order.
    pub detections: Arc<Mutex<Vec<TargetLocation>>>,
    /// The video source (for ground-truth comparison).
    pub video: SyntheticVideo,
    /// Frames the digitizer has put (sampling `produced - consumed` gives
    /// the live frame backlog ARU is supposed to keep small).
    pub frames_produced: Arc<AtomicU64>,
    /// Frames the detector has drained.
    pub frames_consumed: Arc<AtomicU64>,
}

impl QueueTracker {
    /// Current frame backlog: frames put but not yet drained.
    #[must_use]
    pub fn frame_backlog(&self) -> u64 {
        self.frames_produced
            .load(Ordering::Relaxed)
            .saturating_sub(self.frames_consumed.load(Ordering::Relaxed))
    }
}

fn extra(d: Micros) {
    if !d.is_zero() {
        std::thread::sleep(Duration::from(d));
    }
}

/// Wire the 3-thread / 2-queue tracker pipeline onto the threaded runtime
/// with the requested queue backend.
pub fn build_queue_tracker(params: &QueueTrackerParams) -> Result<QueueTracker, BuildError> {
    assert!(params.capacity > 0, "queue capacity must be positive");
    let video = SyntheticVideo::two_person_scene(params.seed);
    let background = Arc::new(video.background_frame());
    let models = ColorModel::scene_models(&video);
    let detections: Arc<Mutex<Vec<TargetLocation>>> = Arc::new(Mutex::new(Vec::new()));
    let frames_produced = Arc::new(AtomicU64::new(0));
    let frames_consumed = Arc::new(AtomicU64::new(0));

    let backend = match params.backend {
        QueueBackend::Mutex => QueueBackend::Mutex,
        QueueBackend::LockFree { .. } => QueueBackend::LockFree {
            capacity: params.capacity,
        },
    };
    let mut b = RuntimeBuilder::new(params.aru.clone(), params.gc)
        .with_queue_backend(backend)
        .with_retry_policy(params.retry);

    let q_frames = b.queue::<Frame>("Q1-frames");
    let q_locs = b.queue::<TargetLocation>("Q2-locations");

    let t_dig = b.thread("digitizer");
    let t_det = b.thread("detector");
    let t_gui = b.thread("gui");

    // digitizer: renders frames and pushes them through Q1. ARU paces this
    // loop from the feedback the puts return; without ARU only the ring
    // capacity (lock-free) bounds it.
    let mut out_frames = b.connect_queue_out(t_dig, &q_frames)?;
    {
        let video = video.clone();
        let produced = Arc::clone(&frames_produced);
        let d = params.delays.digitizer;
        let crash_at = params.crash_digitizer_at;
        let mut crashed = false;
        let mut ts = Timestamp::ZERO;
        b.spawn(t_dig, move |ctx| {
            if crash_at == Some(ts.raw()) && !crashed {
                crashed = true;
                panic!("injected digitizer crash at frame {}", ts.raw());
            }
            let frame = video.frame(ts.raw());
            extra(d);
            out_frames.put(ctx, ts, frame)?;
            produced.fetch_add(1, Ordering::Relaxed);
            ts = ts.next();
            Ok(Step::Continue)
        });
    }

    // detector: drains frames exactly once and runs the tracker's full
    // per-frame compute — background subtraction, histogram construction,
    // and target detection for both color models. Emits two location
    // records per frame (one per model) at distinct timestamps.
    let mut in_frames = b.connect_queue_in(&q_frames, t_det)?;
    let mut out_locs = b.connect_queue_out(t_det, &q_locs)?;
    {
        let background = Arc::clone(&background);
        let consumed = Arc::clone(&frames_consumed);
        let d = params.delays.target_detection;
        b.spawn(t_det, move |ctx| {
            let frame = in_frames.get(ctx)?;
            let mask = subtract_background(&background, &frame.value);
            let hist = build_histogram(&frame.value);
            let locs: Vec<(Timestamp, TargetLocation)> = models
                .iter()
                .enumerate()
                .map(|(m, model)| {
                    let loc = detect_target(&frame.value, &mask, &hist, model);
                    (Timestamp(frame.ts.raw() * 2 + m as u64), loc)
                })
                .collect();
            extra(d);
            out_locs.put_batch(ctx, locs)?;
            consumed.fetch_add(1, Ordering::Relaxed);
            Ok(Step::Continue)
        });
    }

    // GUI sink: drains location records and logs them.
    let mut in_locs = b.connect_queue_in(&q_locs, t_gui)?;
    {
        let detections = Arc::clone(&detections);
        let d = params.delays.gui;
        b.spawn(t_gui, move |ctx| {
            let loc = in_locs.get(ctx)?;
            extra(d);
            detections.lock().push(*loc.value);
            ctx.emit_output(loc.ts);
            Ok(Step::Continue)
        });
    }

    Ok(QueueTracker {
        runtime: b.build()?,
        detections,
        video,
        frames_produced,
        frames_consumed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_accuracy(video: &SyntheticVideo, detections: &Mutex<Vec<TargetLocation>>) -> usize {
        let dets = detections.lock();
        assert!(!dets.is_empty(), "no detections reached the GUI");
        let mut checked = 0;
        for det in dets.iter() {
            if det.found == 1 {
                let gt = video.ground_truth(det.model_id as usize, det.frame_no);
                let err =
                    ((det.x as f64 - gt.cx).powi(2) + (det.y as f64 - gt.cy).powi(2)).sqrt();
                assert!(err < 30.0, "detection error {err:.1}px");
                checked += 1;
            }
        }
        checked
    }

    /// End-to-end on both backends: frames flow digitizer → detector →
    /// GUI exactly once and detections land near ground truth.
    #[test]
    fn queue_tracker_end_to_end_on_both_backends() {
        for backend in [QueueBackend::Mutex, QueueBackend::lock_free()] {
            let params = QueueTrackerParams::new(AruConfig::aru_min(), backend);
            let tracker = build_queue_tracker(&params).unwrap();
            let report = tracker.runtime.run_for(Micros::from_millis(1200)).unwrap();
            assert!(
                report.outputs() > 2,
                "{backend:?}: outputs {}",
                report.outputs()
            );
            let checked = check_accuracy(&tracker.video, &tracker.detections);
            assert!(checked > 0, "{backend:?}: no positive detections");
            // Exactly-once accounting: every drained frame yields one
            // detection record per color model.
            let consumed = tracker.frames_consumed.load(Ordering::Relaxed);
            let dets = tracker.detections.lock().len() as u64;
            assert!(
                dets <= consumed * 2,
                "{backend:?}: {dets} detections from {consumed} frames"
            );
        }
    }

    /// The ARU claim on the lock-free backend, measured without the
    /// lineage trace (which the lock-free queue intentionally does not
    /// record): with ARU the digitizer is paced to the detector and the
    /// frame backlog stays far below the ring capacity; without it the
    /// producer floods until ring backpressure is the only limit.
    #[test]
    fn queue_tracker_aru_bounds_backlog_on_lockfree_backend() {
        let run = |aru: AruConfig| {
            let mut params = QueueTrackerParams::new(aru, QueueBackend::lock_free());
            params.delays.target_detection = Micros::from_millis(25);
            let tracker = build_queue_tracker(&params).unwrap();
            let produced = Arc::clone(&tracker.frames_produced);
            let consumed = Arc::clone(&tracker.frames_consumed);
            let running = tracker.runtime.start();
            let mut max_backlog = 0;
            for _ in 0..120 {
                std::thread::sleep(Duration::from_millis(10));
                let backlog = produced
                    .load(Ordering::Relaxed)
                    .saturating_sub(consumed.load(Ordering::Relaxed));
                max_backlog = max_backlog.max(backlog);
            }
            running.stop().unwrap();
            max_backlog
        };
        let base = run(AruConfig::disabled());
        let aru = run(AruConfig::aru_min());
        assert!(
            base >= 32,
            "baseline never built a backlog (max {base}); the experiment says nothing"
        );
        assert!(
            aru < base / 2,
            "ARU backlog {aru} not well below baseline {base}"
        );
    }

    /// Supervised restart over the lock-free queue: an injected digitizer
    /// crash is caught, the task restarts under the retry policy, and the
    /// pipeline keeps delivering — items already in the ring survive the
    /// crash window.
    #[test]
    fn queue_tracker_survives_digitizer_crash_on_lockfree_backend() {
        let mut params = QueueTrackerParams::new(AruConfig::aru_min(), QueueBackend::lock_free());
        params.retry = RetryPolicy::constant(3, Micros::from_millis(5));
        params.crash_digitizer_at = Some(2);
        let tracker = build_queue_tracker(&params).unwrap();
        let report = tracker.runtime.run_for(Micros::from_millis(1200)).unwrap();
        assert!(report.outputs() > 2, "outputs {}", report.outputs());
        // Frames from both sides of the crash made it through: more frames
        // than the pre-crash prefix alone could supply.
        let produced = tracker.frames_produced.load(Ordering::Relaxed);
        assert!(produced > 2, "digitizer never resumed (produced {produced})");
        check_accuracy(&tracker.video, &tracker.detections);
    }
}
