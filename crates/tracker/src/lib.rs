//! The color-based people tracker application (paper §4, Figure 5).
//!
//! *"A color-based people tracker application developed at Compaq CRL is
//! used to evaluate the performance benefit of the ARU algorithm. The
//! tracker has five tasks that are interconnected via Stampede channels:
//! (1) a Digitizer task that outputs digitized frames; (2) a Motion Mask or
//! Background task that computes the difference between the background and
//! the current image frame; (3) a Histogram task that constructs color
//! histogram of the current image; (4) a Target-Detection task that
//! analyzes each image for an object of interest using a color model; and
//! (5) a GUI task that continually displays the tracking result. Note that
//! there are two target-detection threads, where each thread tracks a
//! specific color model."*
//!
//! The original CRL tracker is not available; this crate reimplements it
//! (see DESIGN.md §2):
//!
//! * [`video`] — a synthetic digitizer: 640×384 RGB frames (737 280 B ≈
//!   the paper's 738 kB items) with two moving colored targets over a
//!   textured background, deterministic per `(seed, frame)`;
//! * [`kernels`] — real pixel kernels: background differencing (246 kB
//!   motion masks), color-histogram model construction (983 kB models),
//!   and histogram back-projection target detection (68 B location
//!   records — all sizes as reported in §5);
//! * [`graph`] — the 6-thread / 9-channel task graph of Figure 5;
//! * [`app_threaded`] — the tracker wired onto the `stampede` threaded
//!   runtime, computing for real;
//! * [`app_queue`] — the same kernels as a FIFO work-queue pipeline,
//!   parameterized by queue backend (mutex oracle or lock-free ring);
//! * [`app_sim`] — the tracker wired onto the `desim` cluster simulator
//!   with service-time models calibrated to the paper's 2005 testbed
//!   regime, in both evaluation configurations (1 node / 5 nodes).

pub mod app_queue;
pub mod app_sim;
pub mod app_threaded;
pub mod graph;
pub mod gui;
pub mod kernels;
pub mod model;
pub mod types;
pub mod video;

pub use app_queue::{build_queue_tracker, QueueTracker, QueueTrackerParams};
pub use app_sim::{build_sim, SimTrackerParams, TrackerConfigId};
pub use app_threaded::{build_threaded, ThreadedTrackerParams};
pub use graph::TrackerGraph;
pub use model::ColorModel;
pub use types::{Frame, HistModel, MotionMask, TargetLocation, FRAME_H, FRAME_W};
pub use video::SyntheticVideo;
