//! Item types flowing through the tracker pipeline, with the exact sizes
//! the paper reports in §5: "Digitizer 738 kB, Background 246 kB, Histogram
//! 981 kB and Target-Detection 68 Bytes."

use stampede::ItemData;

/// Frame geometry: 640×384 RGB = 737 280 bytes ≈ the paper's 738 kB
/// digitizer items.
pub const FRAME_W: usize = 640;
/// See [`FRAME_W`].
pub const FRAME_H: usize = 384;
/// Pixels per frame.
pub const FRAME_PIXELS: usize = FRAME_W * FRAME_H;

/// A digitized RGB video frame.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    /// Frame number (the virtual timestamp the digitizer assigns).
    pub frame_no: u64,
    /// Interleaved RGB, row-major, `3 * FRAME_PIXELS` bytes.
    pub rgb: Vec<u8>,
}

impl Frame {
    /// Pixel accessor (r, g, b).
    #[inline]
    #[must_use]
    pub fn pixel(&self, x: usize, y: usize) -> (u8, u8, u8) {
        let i = 3 * (y * FRAME_W + x);
        (self.rgb[i], self.rgb[i + 1], self.rgb[i + 2])
    }
}

impl ItemData for Frame {
    fn size_bytes(&self) -> u64 {
        self.rgb.len() as u64 // 737 280 ≈ paper's 738 kB
    }
}

/// A foreground/motion mask: one byte per pixel (245 760 B ≈ the paper's
/// 246 kB background items). 0 = background; 255 = moving foreground.
#[derive(Debug, Clone, PartialEq)]
pub struct MotionMask {
    pub frame_no: u64,
    pub mask: Vec<u8>,
}

impl MotionMask {
    /// Fraction of pixels marked foreground.
    #[must_use]
    pub fn foreground_ratio(&self) -> f64 {
        let fg = self.mask.iter().filter(|&&m| m != 0).count();
        fg as f64 / self.mask.len() as f64
    }
}

impl ItemData for MotionMask {
    fn size_bytes(&self) -> u64 {
        self.mask.len() as u64 // 245 760 ≈ paper's 246 kB
    }
}

/// Number of RGB histogram bins per axis (8×8×8 = 512 bins).
pub const HIST_BINS_PER_AXIS: usize = 8;
/// Total histogram bins.
pub const HIST_BINS: usize = HIST_BINS_PER_AXIS * HIST_BINS_PER_AXIS * HIST_BINS_PER_AXIS;

/// The color-histogram model of a frame: a normalized 512-bin RGB
/// histogram plus the per-pixel bin map (which is what makes the item
/// 4 B/pixel = 983 040 B ≈ the paper's 981 kB histogram items, and what
/// lets the detector back-project in one pass).
#[derive(Debug, Clone, PartialEq)]
pub struct HistModel {
    pub frame_no: u64,
    /// Normalized bin frequencies.
    pub bins: Vec<f32>,
    /// Per-pixel bin index.
    pub pixel_bins: Vec<u32>,
}

impl ItemData for HistModel {
    fn size_bytes(&self) -> u64 {
        (self.pixel_bins.len() * 4) as u64 // 983 040 ≈ paper's 981 kB
    }
}

/// Map an RGB triple to its histogram bin.
#[inline]
#[must_use]
pub fn rgb_bin(r: u8, g: u8, b: u8) -> u32 {
    let q = |v: u8| (v as usize * HIST_BINS_PER_AXIS) >> 8;
    (q(r) * HIST_BINS_PER_AXIS * HIST_BINS_PER_AXIS + q(g) * HIST_BINS_PER_AXIS + q(b)) as u32
}

/// A target-detection result record — exactly 68 bytes, like the paper's
/// Target-Detection items.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TargetLocation {
    /// Frame this detection refers to.
    pub frame_no: u64,
    /// Which color model (0 or 1) produced it.
    pub model_id: u32,
    /// 1 if the target was found with confidence.
    pub found: u32,
    /// Detected centroid.
    pub x: f32,
    pub y: f32,
    /// Back-projection score of the best window.
    pub score: f32,
    /// Best window (x0, y0, x1, y1).
    pub bbox: [f32; 4],
    /// Foreground pixels supporting the detection.
    pub support: u32,
    /// Mean RGB of the supporting pixels, sampled from the joined video
    /// frame (a cheap verification that the detection matches the model).
    pub mean_rgb: [f32; 3],
    /// Padding up to the 68-byte record the paper reports.
    pub reserved: [u8; 8],
}

impl TargetLocation {
    /// An empty (not-found) record.
    #[must_use]
    pub fn not_found(frame_no: u64, model_id: u32) -> Self {
        TargetLocation {
            frame_no,
            model_id,
            found: 0,
            x: 0.0,
            y: 0.0,
            score: 0.0,
            bbox: [0.0; 4],
            support: 0,
            mean_rgb: [0.0; 3],
            reserved: [0; 8],
        }
    }
}

impl ItemData for TargetLocation {
    fn size_bytes(&self) -> u64 {
        68 // the paper's record size
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn item_sizes_match_paper() {
        let frame = Frame {
            frame_no: 0,
            rgb: vec![0; 3 * FRAME_PIXELS],
        };
        assert_eq!(frame.size_bytes(), 737_280); // ≈ 738 kB
        let mask = MotionMask {
            frame_no: 0,
            mask: vec![0; FRAME_PIXELS],
        };
        assert_eq!(mask.size_bytes(), 245_760); // ≈ 246 kB
        let hist = HistModel {
            frame_no: 0,
            bins: vec![0.0; HIST_BINS],
            pixel_bins: vec![0; FRAME_PIXELS],
        };
        assert_eq!(hist.size_bytes(), 983_040); // ≈ 981 kB
        assert_eq!(TargetLocation::not_found(0, 0).size_bytes(), 68);
    }

    #[test]
    fn struct_is_at_least_68_bytes() {
        assert!(std::mem::size_of::<TargetLocation>() >= 68);
    }

    #[test]
    fn rgb_bin_ranges() {
        assert_eq!(rgb_bin(0, 0, 0), 0);
        assert_eq!(rgb_bin(255, 255, 255), (HIST_BINS - 1) as u32);
        for (r, g, b) in [(10u8, 200u8, 30u8), (255, 0, 128), (7, 7, 7)] {
            assert!((rgb_bin(r, g, b) as usize) < HIST_BINS);
        }
    }

    #[test]
    fn pixel_accessor() {
        let mut rgb = vec![0u8; 3 * FRAME_PIXELS];
        let i = 3 * (5 * FRAME_W + 7);
        rgb[i] = 1;
        rgb[i + 1] = 2;
        rgb[i + 2] = 3;
        let f = Frame { frame_no: 0, rgb };
        assert_eq!(f.pixel(7, 5), (1, 2, 3));
    }

    #[test]
    fn foreground_ratio() {
        let mut mask = vec![0u8; FRAME_PIXELS];
        for m in mask.iter_mut().take(FRAME_PIXELS / 4) {
            *m = 255;
        }
        let m = MotionMask { frame_no: 0, mask };
        assert!((m.foreground_ratio() - 0.25).abs() < 1e-9);
    }
}
