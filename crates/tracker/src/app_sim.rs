//! The tracker on the discrete-event cluster simulator — the configuration
//! used to regenerate the paper's tables and figures.
//!
//! Service-time medians are calibrated to the paper's 2005 testbed regime
//! (550 MHz 8-way P-III Xeons): the digitizer captures at ~30 ms/frame and
//! target detection — the pipeline bottleneck — takes ~200 ms/frame, which
//! places the end-to-end throughput in the paper's 3–5 fps band. The two
//! evaluation configurations mirror §5 exactly: all tasks on one node, or
//! the five tasks on five nodes with each channel on its producer's node.

use crate::graph::CHANNELS;
use aru_core::{AruConfig, RetryPolicy};
use aru_gc::GcMode;
use desim::{
    CostModel, FaultPlan, InputPolicy, NetModel, ServiceModel, Sim, SimBuilder, SimConfig,
    SimReport, TaskSpec,
};
use vtime::Micros;

/// Which of the paper's two experimental configurations to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrackerConfigId {
    /// Configuration 1: every task on a single 8-way node.
    OneNode,
    /// Configuration 2: the five tasks on five nodes over GbE (the two
    /// target-detection threads share the task's node, as in the paper
    /// where they belong to one task).
    FiveNodes,
}

/// Median per-stage service times.
#[derive(Debug, Clone, Copy)]
pub struct StageServices {
    pub digitizer: Micros,
    pub change_detection: Micros,
    pub histogram: Micros,
    pub target_detection: Micros,
    pub gui: Micros,
}

impl Default for StageServices {
    fn default() -> Self {
        StageServices {
            digitizer: Micros::from_millis(30),
            change_detection: Micros::from_millis(90),
            histogram: Micros::from_millis(120),
            target_detection: Micros::from_millis(200),
            gui: Micros::from_millis(30),
        }
    }
}

/// Full parameter set for one simulated tracker run.
#[derive(Debug, Clone)]
pub struct SimTrackerParams {
    pub aru: AruConfig,
    pub gc: GcMode,
    pub config: TrackerConfigId,
    pub services: StageServices,
    /// Log-normal σ of OS-scheduling noise on service times.
    pub noise_sigma: f64,
    pub cost: CostModel,
    pub net: NetModel,
    pub duration: Micros,
    pub seed: u64,
    /// Scheduled fault injection for chaos experiments (empty by default).
    pub faults: FaultPlan,
    /// Supervised-restart policy for injected crashes.
    pub retry: RetryPolicy,
}

impl SimTrackerParams {
    /// Paper-regime defaults for a given ARU mode and configuration.
    #[must_use]
    pub fn new(aru: AruConfig, config: TrackerConfigId) -> Self {
        SimTrackerParams {
            aru,
            gc: GcMode::Dgc,
            config,
            services: StageServices::default(),
            noise_sigma: 0.12,
            cost: CostModel::default(),
            net: match config {
                TrackerConfigId::OneNode => NetModel::local(),
                TrackerConfigId::FiveNodes => NetModel::default(),
            },
            duration: Micros::from_secs(200),
            seed: 2005,
            faults: FaultPlan::none(),
            retry: RetryPolicy::default(),
        }
    }

    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    #[must_use]
    pub fn with_duration(mut self, duration: Micros) -> Self {
        self.duration = duration;
        self
    }

    #[must_use]
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    #[must_use]
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }
}

/// Build the simulated tracker; returns the ready simulation inputs.
#[must_use]
pub fn build_sim(params: &SimTrackerParams) -> (SimBuilder, SimConfig) {
    let mut b = SimBuilder::new();
    // Cluster nodes: paper hardware is 8-way SMPs.
    let nodes: Vec<_> = match params.config {
        TrackerConfigId::OneNode => {
            let n = b.node(8);
            vec![n, n, n, n, n]
        }
        TrackerConfigId::FiveNodes => (0..5).map(|_| b.node(8)).collect(),
    };
    let (n_dig, n_cd, n_hist, n_td, n_gui) = (nodes[0], nodes[1], nodes[2], nodes[3], nodes[4]);

    let sigma = params.noise_sigma;
    let svc = &params.services;
    let dig = b.source("digitizer", n_dig, ServiceModel::new(svc.digitizer, sigma));
    let cd = b.task(
        "change-detection",
        n_cd,
        TaskSpec::new(ServiceModel::new(svc.change_detection, sigma)),
    );
    let hist = b.task(
        "histogram",
        n_hist,
        TaskSpec::new(ServiceModel::new(svc.histogram, sigma)),
    );
    let td1 = b.task(
        "target-det-1",
        n_td,
        TaskSpec::new(ServiceModel::new(svc.target_detection, sigma)),
    );
    let td2 = b.task(
        "target-det-2",
        n_td,
        TaskSpec::new(ServiceModel::new(svc.target_detection, sigma)),
    );
    let gui = b.task("gui", n_gui, TaskSpec::sink(ServiceModel::new(svc.gui, sigma)));

    // Channels placed on their producer's node (paper §5). Item sizes from
    // graph::CHANNELS (the §5 sizes).
    let sz = |i: usize| CHANNELS[i].2;
    let c1 = b.channel("C1", n_dig);
    let c2 = b.channel("C2", n_dig);
    let c3 = b.channel("C3", n_dig);
    let c4 = b.channel("C4", n_cd);
    let c5 = b.channel("C5", n_cd);
    let c6 = b.channel("C6", n_td);
    let c7 = b.channel("C7", n_hist);
    let c8 = b.channel("C8", n_hist);
    let c9 = b.channel("C9", n_td);

    b.output(dig, c1, sz(0)).unwrap();
    b.output(dig, c2, sz(1)).unwrap();
    b.output(dig, c3, sz(2)).unwrap();
    b.input(cd, c1, InputPolicy::DriverLatest).unwrap();
    b.output(cd, c4, sz(3)).unwrap();
    b.output(cd, c5, sz(4)).unwrap();
    b.input(hist, c2, InputPolicy::DriverLatest).unwrap();
    b.output(hist, c7, sz(6)).unwrap();
    b.output(hist, c8, sz(7)).unwrap();
    b.input(td1, c4, InputPolicy::DriverLatest).unwrap();
    b.input(td1, c3, InputPolicy::JoinExact).unwrap();
    b.input(td1, c7, InputPolicy::JoinLatestAtOrBefore).unwrap();
    b.output(td1, c6, sz(5)).unwrap();
    b.input(td2, c5, InputPolicy::DriverLatest).unwrap();
    b.input(td2, c3, InputPolicy::JoinExact).unwrap();
    b.input(td2, c8, InputPolicy::JoinLatestAtOrBefore).unwrap();
    b.output(td2, c9, sz(8)).unwrap();
    b.input(gui, c6, InputPolicy::DriverLatest).unwrap();
    b.input(gui, c9, InputPolicy::LatestOpt).unwrap();

    let mut cfg = SimConfig::new(params.aru.clone());
    cfg.gc = params.gc;
    cfg.cost = params.cost;
    cfg.net = params.net;
    cfg.duration = params.duration;
    cfg.seed = params.seed;
    cfg.faults = params.faults.clone();
    cfg.retry = params.retry;
    (b, cfg)
}

/// Build and run one simulated tracker experiment.
#[must_use]
pub fn run_sim(params: &SimTrackerParams) -> SimReport {
    let (b, cfg) = build_sim(params);
    Sim::run(b, cfg).expect("tracker sim topology is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn short(aru: AruConfig, config: TrackerConfigId) -> SimReport {
        let params = SimTrackerParams::new(aru, config)
            .with_duration(Micros::from_secs(30))
            .with_seed(11);
        run_sim(&params)
    }

    #[test]
    fn tracker_sim_produces_output_one_node() {
        let r = short(AruConfig::disabled(), TrackerConfigId::OneNode);
        // bottleneck ~200-300 ms → at least ~60 outputs in 30 s
        assert!(r.outputs() > 50, "outputs {}", r.outputs());
    }

    #[test]
    fn tracker_sim_produces_output_five_nodes() {
        let r = short(AruConfig::aru_min(), TrackerConfigId::FiveNodes);
        assert!(r.outputs() > 50, "outputs {}", r.outputs());
    }

    #[test]
    fn paper_shape_waste_ordering() {
        let no = short(AruConfig::disabled(), TrackerConfigId::OneNode).analyze();
        let min = short(AruConfig::aru_min(), TrackerConfigId::OneNode).analyze();
        let max = short(AruConfig::aru_max(), TrackerConfigId::OneNode).analyze();
        let (w_no, w_min, w_max) = (
            no.waste.pct_memory_wasted(),
            min.waste.pct_memory_wasted(),
            max.waste.pct_memory_wasted(),
        );
        assert!(
            w_no > w_min && w_min > w_max,
            "waste ordering violated: no={w_no:.1} min={w_min:.1} max={w_max:.1}"
        );
        assert!(w_no > 40.0, "baseline should waste heavily: {w_no:.1}%");
        assert!(w_max < 15.0, "ARU-max should waste little: {w_max:.1}%");
    }

    #[test]
    fn paper_shape_footprint_ordering() {
        let no = short(AruConfig::disabled(), TrackerConfigId::OneNode).analyze();
        let min = short(AruConfig::aru_min(), TrackerConfigId::OneNode).analyze();
        let max = short(AruConfig::aru_max(), TrackerConfigId::OneNode).analyze();
        let fp = |a: &desim::report::SimAnalysis| a.footprint.observed_summary().mean;
        assert!(fp(&no) > fp(&min), "no {} !> min {}", fp(&no), fp(&min));
        assert!(fp(&min) > fp(&max), "min {} !> max {}", fp(&min), fp(&max));
        // every run's observed footprint dominates its *own* ideal bound
        for (label, a) in [("no", &no), ("min", &min), ("max", &max)] {
            let igc = a.igc.summary().mean;
            assert!(
                fp(a) >= igc * 0.999,
                "{label}: observed {} below own IGC {igc}",
                fp(a)
            );
        }
    }
}
