//! The GUI task's display surface (the paper's task 5: "a GUI task that
//! continually displays the tracking result").
//!
//! A terminal program can't open the 2005 kiosk display, so the surface is
//! an ASCII canvas: detections render as the model digit, ground truth as
//! `+` (a detection sitting exactly on ground truth covers its `+`).

use crate::types::{TargetLocation, FRAME_H, FRAME_W};
use crate::video::SyntheticVideo;

/// A character canvas mapped onto the frame coordinate system.
#[derive(Debug, Clone)]
pub struct AsciiCanvas {
    cols: usize,
    rows: usize,
    cells: Vec<u8>,
}

impl AsciiCanvas {
    /// Create an empty canvas (`cols` × `rows` character cells).
    #[must_use]
    pub fn new(cols: usize, rows: usize) -> Self {
        AsciiCanvas {
            cols,
            rows,
            cells: vec![b'.'; cols * rows],
        }
    }

    fn cell_of(&self, x: f32, y: f32) -> Option<(usize, usize)> {
        if !(0.0..FRAME_W as f32).contains(&x) || !(0.0..FRAME_H as f32).contains(&y) {
            return None;
        }
        let cx = (x as usize * self.cols) / FRAME_W;
        let cy = (y as usize * self.rows) / FRAME_H;
        Some((cx.min(self.cols - 1), cy.min(self.rows - 1)))
    }

    /// Plot a character at frame coordinates.
    pub fn plot(&mut self, x: f32, y: f32, ch: u8) {
        if let Some((cx, cy)) = self.cell_of(x, y) {
            self.cells[cy * self.cols + cx] = ch;
        }
    }

    /// Character at frame coordinates (for tests).
    #[must_use]
    pub fn at(&self, x: f32, y: f32) -> Option<u8> {
        self.cell_of(x, y).map(|(cx, cy)| self.cells[cy * self.cols + cx])
    }

    /// Render to a multi-line string.
    #[must_use]
    pub fn render(&self) -> String {
        let mut s = String::with_capacity((self.cols + 1) * self.rows);
        for row in self.cells.chunks(self.cols) {
            s.push_str(&String::from_utf8_lossy(row));
            s.push('\n');
        }
        s
    }
}

/// Render the most recent positive detection of each model against its
/// ground truth. Detections show as `'1'`/`'2'`…, ground truth as `'+'`.
#[must_use]
pub fn render_tracking(
    detections: &[TargetLocation],
    video: &SyntheticVideo,
    cols: usize,
    rows: usize,
) -> String {
    let mut canvas = AsciiCanvas::new(cols, rows);
    let models = video.target_count();
    let mut latest: Vec<Option<&TargetLocation>> = vec![None; models];
    for d in detections.iter().rev() {
        let m = d.model_id as usize;
        if m < models && d.found == 1 && latest[m].is_none() {
            latest[m] = Some(d);
        }
        if latest.iter().all(Option::is_some) {
            break;
        }
    }
    for (m, det) in latest.iter().enumerate() {
        if let Some(d) = det {
            let gt = video.ground_truth(m, d.frame_no);
            canvas.plot(gt.cx as f32, gt.cy as f32, b'+');
            canvas.plot(d.x, d.y, b'1' + m as u8);
        }
    }
    canvas.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canvas_plots_and_renders() {
        let mut c = AsciiCanvas::new(10, 5);
        c.plot(0.0, 0.0, b'A');
        c.plot((FRAME_W - 1) as f32, (FRAME_H - 1) as f32, b'Z');
        let s = c.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5);
        assert!(lines[0].starts_with('A'));
        assert!(lines[4].ends_with('Z'));
    }

    #[test]
    fn out_of_frame_plots_are_ignored() {
        let mut c = AsciiCanvas::new(4, 4);
        c.plot(-5.0, 10.0, b'X');
        c.plot(10.0, 99_999.0, b'X');
        assert!(!c.render().contains('X'));
    }

    #[test]
    fn render_tracking_shows_detection_and_truth() {
        let video = SyntheticVideo::two_person_scene(3);
        let gt = video.ground_truth(0, 42);
        // A perfect detection covers its own '+'; offset it slightly so
        // both glyphs are visible.
        let mut det = TargetLocation::not_found(42, 0);
        det.found = 1;
        det.x = (gt.cx - 100.0).max(0.0) as f32;
        det.y = gt.cy as f32;
        let s = render_tracking(&[det], &video, 64, 16);
        assert!(s.contains('1'), "detection glyph missing:\n{s}");
        assert!(s.contains('+'), "ground-truth glyph missing:\n{s}");
    }

    #[test]
    fn render_tracking_uses_latest_positive_detection() {
        let video = SyntheticVideo::two_person_scene(3);
        let mut old = TargetLocation::not_found(1, 0);
        old.found = 1;
        old.x = 10.0;
        old.y = 10.0;
        let mut newer = TargetLocation::not_found(50, 0);
        newer.found = 1;
        newer.x = 600.0;
        newer.y = 350.0;
        let not_found = TargetLocation::not_found(60, 0);
        let s = render_tracking(&[old, newer, not_found], &video, 64, 16);
        // '1' must be at the newer position (right-bottom), not the old.
        let lines: Vec<&str> = s.lines().collect();
        let pos = lines
            .iter()
            .enumerate()
            .find_map(|(r, l)| l.find('1').map(|c| (r, c)))
            .expect("detection rendered");
        assert!(pos.0 > 8 && pos.1 > 32, "detection at {pos:?} — stale position used");
    }

    #[test]
    fn empty_detections_render_empty_scene() {
        let video = SyntheticVideo::two_person_scene(3);
        let s = render_tracking(&[], &video, 32, 8);
        assert!(!s.contains('1') && !s.contains('+'));
    }
}
