//! Synthetic digitizer: deterministic video with moving colored targets.
//!
//! Substitutes for the paper's camera + digitizer (DESIGN.md §2). Frames
//! contain a textured static background plus two moving "people" — solid
//! colored rectangles with per-pixel noise — whose positions follow
//! Lissajous paths. Given the same `(seed, frame_no)` the generator emits
//! bit-identical frames, so detection accuracy is testable against ground
//! truth.

use crate::types::{Frame, FRAME_H, FRAME_PIXELS, FRAME_W};

/// A moving colored target ("person's shirt").
#[derive(Debug, Clone, Copy)]
pub struct Target {
    /// Dominant color (RGB).
    pub color: (u8, u8, u8),
    /// Half-extents of the rectangle in pixels.
    pub half_w: usize,
    pub half_h: usize,
    /// Path parameters (Lissajous): position oscillates across the frame.
    pub fx: f64,
    pub fy: f64,
    pub phase: f64,
}

/// Ground-truth position of a target in a given frame.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GroundTruth {
    pub cx: f64,
    pub cy: f64,
}

/// The synthetic video source.
#[derive(Debug, Clone)]
pub struct SyntheticVideo {
    seed: u64,
    targets: Vec<Target>,
    /// Per-pixel noise amplitude (0 disables noise).
    pub noise_amp: u8,
    /// Per-target absence intervals `(from, to)` in frame numbers: the
    /// target is not painted while `from <= frame < to` (it walked out of
    /// the scene — exercises the tracker's not-found path).
    absences: Vec<Vec<(u64, u64)>>,
}

impl SyntheticVideo {
    /// The standard two-target scene used throughout the reproduction: a
    /// red-shirted and a green-shirted target (the two color models the
    /// paper's two Target-Detection threads track).
    #[must_use]
    pub fn two_person_scene(seed: u64) -> Self {
        SyntheticVideo {
            seed,
            targets: vec![
                Target {
                    color: (210, 40, 40),
                    half_w: 28,
                    half_h: 48,
                    fx: 0.021,
                    fy: 0.013,
                    phase: 0.0,
                },
                Target {
                    color: (40, 200, 60),
                    half_w: 24,
                    half_h: 44,
                    fx: 0.017,
                    fy: 0.023,
                    phase: 2.1,
                },
            ],
            noise_amp: 12,
            absences: vec![Vec::new(), Vec::new()],
        }
    }

    /// Make target `i` absent (off-scene) for frames `from..to`.
    #[must_use]
    pub fn with_absence(mut self, i: usize, from: u64, to: u64) -> Self {
        self.absences[i].push((from, to));
        self
    }

    /// Is target `i` in the scene at `frame_no`?
    #[must_use]
    pub fn is_visible(&self, i: usize, frame_no: u64) -> bool {
        !self.absences[i]
            .iter()
            .any(|&(from, to)| frame_no >= from && frame_no < to)
    }

    /// Number of targets in the scene.
    #[must_use]
    pub fn target_count(&self) -> usize {
        self.targets.len()
    }

    /// Target descriptor (for building color models).
    #[must_use]
    pub fn target(&self, i: usize) -> &Target {
        &self.targets[i]
    }

    /// Ground-truth center of target `i` in frame `frame_no`.
    #[must_use]
    pub fn ground_truth(&self, i: usize, frame_no: u64) -> GroundTruth {
        let t = &self.targets[i];
        let ft = frame_no as f64;
        let cx = (FRAME_W as f64 / 2.0)
            + (FRAME_W as f64 / 2.0 - 80.0) * (t.fx * ft + t.phase).sin();
        let cy = (FRAME_H as f64 / 2.0)
            + (FRAME_H as f64 / 2.0 - 70.0) * (t.fy * ft + t.phase * 0.7).cos();
        GroundTruth { cx, cy }
    }

    /// The static background pixel at (x, y): a smooth two-tone gradient
    /// with a checker texture (so background differencing has real work).
    #[inline]
    fn background_pixel(&self, x: usize, y: usize) -> (u8, u8, u8) {
        let checker = if ((x >> 4) + (y >> 4)) & 1 == 0 { 18 } else { 0 };
        let r = (40 + (x * 40 / FRAME_W) + checker) as u8;
        let g = (60 + (y * 40 / FRAME_H) + checker) as u8;
        let b = (90 + ((x + y) * 30 / (FRAME_W + FRAME_H)) + checker) as u8;
        (r, g, b)
    }

    /// A clean background frame (what the Background task differencing
    /// model was trained on).
    #[must_use]
    pub fn background_frame(&self) -> Frame {
        let mut rgb = vec![0u8; 3 * FRAME_PIXELS];
        for y in 0..FRAME_H {
            for x in 0..FRAME_W {
                let (r, g, b) = self.background_pixel(x, y);
                let i = 3 * (y * FRAME_W + x);
                rgb[i] = r;
                rgb[i + 1] = g;
                rgb[i + 2] = b;
            }
        }
        Frame { frame_no: u64::MAX, rgb }
    }

    /// Generate frame `frame_no`.
    #[must_use]
    pub fn frame(&self, frame_no: u64) -> Frame {
        let mut rgb = vec![0u8; 3 * FRAME_PIXELS];
        // Background with cheap deterministic per-pixel noise.
        let mut state = self
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(frame_no);
        for y in 0..FRAME_H {
            for x in 0..FRAME_W {
                let (r, g, b) = self.background_pixel(x, y);
                let i = 3 * (y * FRAME_W + x);
                let n = if self.noise_amp > 0 {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    ((state >> 33) % (2 * self.noise_amp as u64 + 1)) as i16
                        - self.noise_amp as i16
                } else {
                    0
                };
                rgb[i] = (r as i16 + n).clamp(0, 255) as u8;
                rgb[i + 1] = (g as i16 + n).clamp(0, 255) as u8;
                rgb[i + 2] = (b as i16 + n).clamp(0, 255) as u8;
            }
        }
        // Paint targets (unless absent from the scene).
        for (ti, t) in self.targets.iter().enumerate() {
            if !self.is_visible(ti, frame_no) {
                continue;
            }
            let gt = self.ground_truth(ti, frame_no);
            let x0 = (gt.cx as isize - t.half_w as isize).max(0) as usize;
            let x1 = ((gt.cx as usize) + t.half_w).min(FRAME_W - 1);
            let y0 = (gt.cy as isize - t.half_h as isize).max(0) as usize;
            let y1 = ((gt.cy as usize) + t.half_h).min(FRAME_H - 1);
            for y in y0..=y1 {
                for x in x0..=x1 {
                    let i = 3 * (y * FRAME_W + x);
                    // slight per-pixel shading so target histograms spread
                    let shade = ((x ^ y) & 7) as i16 - 3;
                    rgb[i] = (t.color.0 as i16 + shade).clamp(0, 255) as u8;
                    rgb[i + 1] = (t.color.1 as i16 + shade).clamp(0, 255) as u8;
                    rgb[i + 2] = (t.color.2 as i16 + shade).clamp(0, 255) as u8;
                }
            }
        }
        Frame { frame_no, rgb }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_are_deterministic() {
        let v = SyntheticVideo::two_person_scene(7);
        assert_eq!(v.frame(3), v.frame(3));
        assert_ne!(v.frame(3), v.frame(4), "different frames differ");
        let v2 = SyntheticVideo::two_person_scene(8);
        assert_ne!(v.frame(3), v2.frame(3), "different seeds differ");
    }

    #[test]
    fn targets_move_over_time() {
        let v = SyntheticVideo::two_person_scene(1);
        let a = v.ground_truth(0, 0);
        let b = v.ground_truth(0, 100);
        let d = ((a.cx - b.cx).powi(2) + (a.cy - b.cy).powi(2)).sqrt();
        assert!(d > 20.0, "target barely moved: {d}");
    }

    #[test]
    fn ground_truth_stays_in_frame() {
        let v = SyntheticVideo::two_person_scene(1);
        for i in 0..v.target_count() {
            for f in (0..2000).step_by(37) {
                let gt = v.ground_truth(i, f);
                assert!(gt.cx >= 0.0 && gt.cx < FRAME_W as f64);
                assert!(gt.cy >= 0.0 && gt.cy < FRAME_H as f64);
            }
        }
    }

    #[test]
    fn target_pixels_have_target_color() {
        let mut v = SyntheticVideo::two_person_scene(1);
        v.noise_amp = 0;
        let f = v.frame(10);
        let gt = v.ground_truth(0, 10);
        let (r, g, b) = f.pixel(gt.cx as usize, gt.cy as usize);
        let t = v.target(0).color;
        assert!((r as i16 - t.0 as i16).abs() < 10);
        assert!((g as i16 - t.1 as i16).abs() < 10);
        assert!((b as i16 - t.2 as i16).abs() < 10);
    }

    #[test]
    fn absent_target_is_not_painted() {
        let mut v = SyntheticVideo::two_person_scene(1).with_absence(0, 10, 20);
        v.noise_amp = 0;
        assert!(v.is_visible(0, 9));
        assert!(!v.is_visible(0, 10));
        assert!(!v.is_visible(0, 19));
        assert!(v.is_visible(0, 20));
        // during the absence, target 0's pixels are background
        let bg = v.background_frame();
        let f = v.frame(15);
        let gt = v.ground_truth(0, 15);
        assert_eq!(
            f.pixel(gt.cx as usize, gt.cy as usize),
            bg.pixel(gt.cx as usize, gt.cy as usize)
        );
        // target 1 unaffected
        let gt1 = v.ground_truth(1, 15);
        assert_ne!(
            f.pixel(gt1.cx as usize, gt1.cy as usize),
            bg.pixel(gt1.cx as usize, gt1.cy as usize)
        );
    }

    #[test]
    fn background_differs_from_frame_only_near_targets() {
        let mut v = SyntheticVideo::two_person_scene(1);
        v.noise_amp = 0;
        let bg = v.background_frame();
        let f = v.frame(5);
        let gt = v.ground_truth(0, 5);
        // far corner should match the background exactly (no noise)
        let far = (
            if gt.cx > (FRAME_W / 2) as f64 { 5 } else { FRAME_W - 5 },
            3usize,
        );
        assert_eq!(f.pixel(far.0, far.1), bg.pixel(far.0, far.1));
    }
}
