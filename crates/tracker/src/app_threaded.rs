//! The tracker on the threaded Stampede runtime — real pixel computation.
//!
//! Every stage runs its actual kernel on the synthetic video, so iteration
//! times are genuinely data-dependent. Optional per-stage extra delays let
//! examples emulate the paper's much slower 2005 hardware without burning
//! CPU (the delays count as execution time, not blocking — exactly like a
//! slower kernel).

use crate::kernels::{build_histogram, detect_target, subtract_background};
use crate::model::ColorModel;
use crate::types::{Frame, HistModel, MotionMask, TargetLocation};
use crate::video::SyntheticVideo;
use aru_core::AruConfig;
use aru_gc::GcMode;
use parking_lot::Mutex;
use stampede::{
    BuildError, FanOut, ItemData, LinkModel, NetworkSim, Output, RemoteOutput, Runtime,
    RuntimeBuilder, StampedeError, Step, TaskCtx,
};
use std::sync::Arc;
use std::time::Duration;
use vtime::{Micros, Timestamp};

/// Optional per-stage extra compute delay (emulates slower hardware).
#[derive(Debug, Clone, Copy, Default)]
pub struct StageDelays {
    pub digitizer: Micros,
    pub change_detection: Micros,
    pub histogram: Micros,
    pub target_detection: Micros,
    pub gui: Micros,
}

/// Parameters for a threaded tracker run.
#[derive(Debug, Clone)]
pub struct ThreadedTrackerParams {
    pub aru: AruConfig,
    pub gc: GcMode,
    pub seed: u64,
    pub delays: StageDelays,
    /// `Some(link)` runs the paper's configuration 2 on real threads: every
    /// cross-stage channel put goes through a simulated link of this model
    /// (the five tasks live on five "nodes"). `None` is configuration 1.
    pub distributed: Option<LinkModel>,
    /// `Some((sink, interval))` enables the runtime's periodic telemetry
    /// exporter (Prometheus text + JSONL) for this run.
    pub export: Option<(aru_metrics::ExportSink, Micros)>,
    /// `Some(path)` persists the flight-recorder journal (DESIGN.md §16)
    /// there at clean stop, plus a `.crash.jsonl` sibling on escalation.
    pub journal: Option<std::path::PathBuf>,
}

impl ThreadedTrackerParams {
    #[must_use]
    pub fn new(aru: AruConfig) -> Self {
        ThreadedTrackerParams {
            aru,
            gc: GcMode::Dgc,
            seed: 1,
            delays: StageDelays::default(),
            distributed: None,
            export: None,
            journal: None,
        }
    }

    /// Configuration 2: distribute the stages over a simulated link.
    #[must_use]
    pub fn with_link(mut self, link: LinkModel) -> Self {
        self.distributed = Some(link);
        self
    }

    /// Enable the runtime's periodic telemetry exporter.
    #[must_use]
    pub fn with_export(mut self, sink: aru_metrics::ExportSink, interval: Micros) -> Self {
        self.export = Some((sink, interval));
        self
    }

    /// Persist the flight-recorder journal for `repro doctor`.
    #[must_use]
    pub fn with_journal(mut self, path: impl Into<std::path::PathBuf>) -> Self {
        self.journal = Some(path.into());
        self
    }
}

/// A producer endpoint that is either node-local or behind a simulated
/// link, so the same task body serves both configurations.
enum Sender<T: ItemData> {
    Local(Output<T>),
    Remote(RemoteOutput<T>),
}

impl<T: ItemData> Sender<T> {
    fn wrap(out: Output<T>, net: &Option<Arc<NetworkSim>>, link: Option<LinkModel>) -> Self {
        match (net, link) {
            (Some(net), Some(link)) => Sender::Remote(RemoteOutput::new(out, Arc::clone(net), link)),
            _ => Sender::Local(out),
        }
    }

    fn put(
        &self,
        ctx: &mut TaskCtx,
        ts: Timestamp,
        value: T,
    ) -> Result<(), StampedeError> {
        match self {
            Sender::Local(o) => o.put(ctx, ts, value),
            Sender::Remote(r) => r.put(ctx, ts, value),
        }
    }
}

/// A broadcast endpoint for the stages that fan one result out to several
/// channels. Node-local fan-outs go through [`FanOut`] — one `Arc`, one
/// clock read, one feedback time for the whole bundle, instead of a deep
/// clone and a full put per channel. Distributed fan-outs keep per-link
/// puts (each link materializes its own copy in flight anyway).
enum FanSender<T: ItemData> {
    Local(FanOut<T>),
    Remote(Vec<RemoteOutput<T>>),
}

impl<T: ItemData + Clone> FanSender<T> {
    fn wrap(outs: Vec<Output<T>>, net: &Option<Arc<NetworkSim>>, link: Option<LinkModel>) -> Self {
        match (net, link) {
            (Some(net), Some(link)) => FanSender::Remote(
                outs.into_iter()
                    .map(|o| RemoteOutput::new(o, Arc::clone(net), link))
                    .collect(),
            ),
            _ => FanSender::Local(FanOut::new(outs)),
        }
    }

    fn put(&self, ctx: &mut TaskCtx, ts: Timestamp, value: T) -> Result<(), StampedeError> {
        match self {
            FanSender::Local(f) => f.put(ctx, ts, value),
            FanSender::Remote(outs) => {
                let (last, rest) = outs.split_last().expect("fan-out is non-empty");
                for r in rest {
                    r.put(ctx, ts, value.clone())?;
                }
                last.put(ctx, ts, value)
            }
        }
    }
}

/// A built tracker pipeline plus live observation hooks.
pub struct ThreadedTracker {
    /// The ready-to-run pipeline.
    pub runtime: Runtime,
    /// Detections observed by the GUI task, in display order.
    pub detections: Arc<Mutex<Vec<TargetLocation>>>,
    /// The video source (for ground-truth comparison).
    pub video: SyntheticVideo,
    /// The simulated interconnect (configuration 2 only); stop it after the
    /// run.
    pub network: Option<Arc<NetworkSim>>,
}

fn extra(d: Micros) {
    if !d.is_zero() {
        std::thread::sleep(Duration::from(d));
    }
}

/// Wire the full 6-thread / 9-channel tracker (Figure 5) onto the threaded
/// runtime.
pub fn build_threaded(params: &ThreadedTrackerParams) -> Result<ThreadedTracker, BuildError> {
    let video = SyntheticVideo::two_person_scene(params.seed);
    let background = Arc::new(video.background_frame());
    let models = ColorModel::scene_models(&video);
    let detections: Arc<Mutex<Vec<TargetLocation>>> = Arc::new(Mutex::new(Vec::new()));

    let mut b = RuntimeBuilder::new(params.aru.clone(), params.gc);
    if let Some((sink, interval)) = params.export.clone() {
        b = b.with_export(sink, interval);
    }
    if let Some(path) = params.journal.clone() {
        b = b.with_journal(path);
    }
    let network = params.distributed.map(|_| NetworkSim::start());
    let link = params.distributed;

    let c1 = b.channel::<Frame>("C1");
    let c2 = b.channel::<Frame>("C2");
    let c3 = b.channel::<Frame>("C3");
    let c4 = b.channel::<MotionMask>("C4");
    let c5 = b.channel::<MotionMask>("C5");
    let c6 = b.channel::<TargetLocation>("C6");
    let c7 = b.channel::<HistModel>("C7");
    let c8 = b.channel::<HistModel>("C8");
    let c9 = b.channel::<TargetLocation>("C9");

    let t_dig = b.thread("digitizer");
    let t_cd = b.thread("change-detection");
    let t_hist = b.thread("histogram");
    let t_td1 = b.thread("target-det-1");
    let t_td2 = b.thread("target-det-2");
    let t_gui = b.thread("gui");

    // digitizer (in configuration 2 every inter-stage put crosses a link)
    let out_frames = FanSender::wrap(
        vec![
            b.connect_out(t_dig, &c1)?,
            b.connect_out(t_dig, &c2)?,
            b.connect_out(t_dig, &c3)?,
        ],
        &network,
        link,
    );
    {
        let video = video.clone();
        let d = params.delays.digitizer;
        let mut ts = Timestamp::ZERO;
        b.spawn(t_dig, move |ctx| {
            let frame = video.frame(ts.raw());
            extra(d);
            out_frames.put(ctx, ts, frame)?;
            ts = ts.next();
            Ok(Step::Continue)
        });
    }

    // change detection
    let mut in_c1 = b.connect_in(&c1, t_cd)?;
    let out_masks = FanSender::wrap(
        vec![b.connect_out(t_cd, &c4)?, b.connect_out(t_cd, &c5)?],
        &network,
        link,
    );
    {
        let background = Arc::clone(&background);
        let d = params.delays.change_detection;
        b.spawn(t_cd, move |ctx| {
            let frame = in_c1.get_latest(ctx)?;
            if ctx.should_skip(frame.ts) {
                return Ok(Step::Continue);
            }
            let mask = subtract_background(&background, &frame.value);
            extra(d);
            out_masks.put(ctx, frame.ts, mask)?;
            Ok(Step::Continue)
        });
    }

    // histogram
    let mut in_c2 = b.connect_in(&c2, t_hist)?;
    let out_hists = FanSender::wrap(
        vec![b.connect_out(t_hist, &c7)?, b.connect_out(t_hist, &c8)?],
        &network,
        link,
    );
    {
        let d = params.delays.histogram;
        b.spawn(t_hist, move |ctx| {
            let frame = in_c2.get_latest(ctx)?;
            if ctx.should_skip(frame.ts) {
                return Ok(Step::Continue);
            }
            let hist = build_histogram(&frame.value);
            extra(d);
            out_hists.put(ctx, frame.ts, hist)?;
            Ok(Step::Continue)
        });
    }

    // the two target-detection threads (one per color model)
    for (mask_ch, model_ch, loc_ch, thread, model) in [
        (&c4, &c7, &c6, t_td1, models[0].clone()),
        (&c5, &c8, &c9, t_td2, models[1].clone()),
    ] {
        let mut in_mask = b.connect_in(mask_ch, thread)?;
        let mut in_frame = b.connect_in(&c3, thread)?;
        let mut in_model = b.connect_in(model_ch, thread)?;
        let out_loc = Sender::wrap(b.connect_out(thread, loc_ch)?, &network, link);
        let d = params.delays.target_detection;
        b.spawn(thread, move |ctx| {
            let mask = in_mask.get_latest(ctx)?;
            if ctx.should_skip(mask.ts) {
                return Ok(Step::Continue);
            }
            let Some(frame) = in_frame.get_exact(ctx, mask.ts)? else {
                // frame lost — abandon this mask
                return Ok(Step::Continue);
            };
            let hist = in_model.get_latest_at_or_before(ctx, mask.ts)?;
            let loc = detect_target(&frame.value, &mask.value, &hist.value, &model);
            extra(d);
            out_loc.put(ctx, mask.ts, loc)?;
            Ok(Step::Continue)
        });
    }

    // GUI
    let mut in_c6 = b.connect_in(&c6, t_gui)?;
    let mut in_c9 = b.connect_in(&c9, t_gui)?;
    {
        let detections = Arc::clone(&detections);
        let d = params.delays.gui;
        b.spawn(t_gui, move |ctx| {
            let loc1 = in_c6.get_latest(ctx)?;
            let loc2 = in_c9.try_get_latest(ctx)?;
            extra(d);
            {
                let mut log = detections.lock();
                log.push(*loc1.value);
                if let Some(l2) = &loc2 {
                    log.push(*l2.value);
                }
            }
            ctx.emit_output(loc1.ts);
            Ok(Step::Continue)
        });
    }

    Ok(ThreadedTracker {
        runtime: b.build()?,
        detections,
        video,
        network,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A short real run: frames flow end-to-end and detections land near
    /// ground truth. (The detection kernel joins on matching timestamps, so
    /// accuracy also validates the join plumbing.)
    #[test]
    fn threaded_tracker_end_to_end() {
        let params = ThreadedTrackerParams::new(AruConfig::aru_min());
        let tracker = build_threaded(&params).unwrap();
        let video = tracker.video.clone();
        let report = tracker
            .runtime
            .run_for(Micros::from_millis(1500))
            .unwrap();
        assert!(report.outputs() > 2, "outputs {}", report.outputs());
        let dets = tracker.detections.lock();
        assert!(!dets.is_empty());
        let mut checked = 0;
        for det in dets.iter() {
            if det.found == 1 {
                let gt = video.ground_truth(det.model_id as usize, det.frame_no);
                let err = ((det.x as f64 - gt.cx).powi(2) + (det.y as f64 - gt.cy).powi(2)).sqrt();
                assert!(err < 30.0, "detection error {err:.1}px");
                checked += 1;
            }
        }
        assert!(checked > 0, "no positive detections");
    }

    #[test]
    fn threaded_tracker_aru_reduces_footprint() {
        let run = |aru: AruConfig| {
            let mut params = ThreadedTrackerParams::new(aru);
            // slow the detectors so the digitizer overruns without ARU
            params.delays.target_detection = Micros::from_millis(40);
            let tracker = build_threaded(&params).unwrap();
            tracker
                .runtime
                .run_for(Micros::from_millis(1500))
                .unwrap()
                .analyze()
        };
        let base = run(AruConfig::disabled());
        let aru = run(AruConfig::aru_min());
        let fp_base = base.footprint.observed_summary().mean;
        let fp_aru = aru.footprint.observed_summary().mean;
        assert!(
            fp_aru < fp_base,
            "ARU footprint {fp_aru:.0} !< baseline {fp_base:.0}"
        );
    }
}
// (distributed-mode test appended below the module's test block)
#[cfg(test)]
mod distributed_tests {
    use super::*;

    #[test]
    fn distributed_tracker_pays_link_latency() {
        let run = |link: Option<LinkModel>| {
            let mut params = ThreadedTrackerParams::new(AruConfig::aru_min());
            if let Some(l) = link {
                params = params.with_link(l);
            }
            let tracker = build_threaded(&params).unwrap();
            let report = tracker
                .runtime
                .run_for(Micros::from_millis(1500))
                .unwrap();
            if let Some(net) = &tracker.network {
                net.stop();
            }
            let a = report.analyze();
            (a.perf.latency.mean, report.outputs())
        };
        let (local_lat, local_out) = run(None);
        // A fat link: 30 ms latency, slow bandwidth (frame ≈ 30+6 ms).
        let (dist_lat, dist_out) = run(Some(LinkModel {
            latency: Micros::from_millis(30),
            bandwidth_bytes_per_us: 125.0,
        }));
        assert!(local_out > 0 && dist_out > 0);
        // The pipeline crosses ≥3 links end to end: ≥90 ms extra latency.
        assert!(
            dist_lat > local_lat + 60_000.0,
            "distributed latency {dist_lat:.0}us vs local {local_lat:.0}us"
        );
    }
}
