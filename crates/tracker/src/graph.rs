//! The tracker task graph (paper Figure 5): 6 threads, 9 channels.
//!
//! ```text
//!                 ┌─ C1 ─→ ChangeDetection ─ C4 ─→ TargetDet1 ─ C6 ─→ GUI
//!                 │                        └ C5 ─→ TargetDet2 ─ C9 ─↗
//!   Digitizer ────┼─ C2 ─→ Histogram ────── C7 ─→ TargetDet1
//!                 │                        └ C8 ─→ TargetDet2
//!                 └─ C3 ─→ (video frames) ─────→ TargetDet1 & TargetDet2
//! ```
//!
//! * C1/C2/C3 carry 738 kB video frames (to change detection, histogram
//!   and target detection respectively);
//! * C4/C5 carry 246 kB motion masks (one channel per detection thread);
//! * C7/C8 carry 981 kB histogram models (one per detection thread);
//! * C6/C9 carry 68 B location records into the GUI.
//!
//! Each Target-Detection thread *drives* on its motion-mask channel (get
//! latest), joins the video frame at the same timestamp (get exact), and
//! takes the freshest histogram model at or before it.

use aru_core::Topology;

/// Task names in pipeline order.
pub const TASKS: [&str; 6] = [
    "digitizer",
    "change-detection",
    "histogram",
    "target-det-1",
    "target-det-2",
    "gui",
];

/// Channel names (C1..C9) with their payload descriptions and sizes.
pub const CHANNELS: [(&str, &str, u64); 9] = [
    ("C1", "video frame → change detection", 737_280),
    ("C2", "video frame → histogram", 737_280),
    ("C3", "video frame → target detection", 737_280),
    ("C4", "motion mask → target-det-1", 245_760),
    ("C5", "motion mask → target-det-2", 245_760),
    ("C6", "location model-1 → gui", 68),
    ("C7", "histogram model → target-det-1", 983_040),
    ("C8", "histogram model → target-det-2", 983_040),
    ("C9", "location model-2 → gui", 68),
];

/// A descriptive handle for rendering / inspection.
#[derive(Debug, Clone, Default)]
pub struct TrackerGraph;

impl TrackerGraph {
    /// Build the abstract topology (the same wiring both runtimes use).
    #[must_use]
    pub fn topology() -> Topology {
        let mut t = Topology::new();
        let dig = t.add_thread(TASKS[0]);
        let cd = t.add_thread(TASKS[1]);
        let hist = t.add_thread(TASKS[2]);
        let td1 = t.add_thread(TASKS[3]);
        let td2 = t.add_thread(TASKS[4]);
        let gui = t.add_thread(TASKS[5]);
        let c: Vec<_> = CHANNELS
            .iter()
            .map(|(name, _, _)| t.add_channel(*name))
            .collect();
        // digitizer fan-out
        t.connect(dig, c[0]).unwrap();
        t.connect(dig, c[1]).unwrap();
        t.connect(dig, c[2]).unwrap();
        t.connect(c[0], cd).unwrap();
        t.connect(c[1], hist).unwrap();
        // change detection → per-detector mask channels
        t.connect(cd, c[3]).unwrap();
        t.connect(cd, c[4]).unwrap();
        // histogram → per-detector model channels
        t.connect(hist, c[6]).unwrap();
        t.connect(hist, c[7]).unwrap();
        // target detection inputs: mask (driver), frame (join), model (join)
        t.connect(c[3], td1).unwrap();
        t.connect(c[2], td1).unwrap();
        t.connect(c[6], td1).unwrap();
        t.connect(c[4], td2).unwrap();
        t.connect(c[2], td2).unwrap();
        t.connect(c[7], td2).unwrap();
        // locations → GUI
        t.connect(td1, c[5]).unwrap();
        t.connect(td2, c[8]).unwrap();
        t.connect(c[5], gui).unwrap();
        t.connect(c[8], gui).unwrap();
        t
    }

    /// Render the pipeline (for examples / the `repro` binary).
    #[must_use]
    pub fn render() -> String {
        Self::topology().render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topology_shape() {
        let t = TrackerGraph::topology();
        assert_eq!(t.node_count(), 6 + 9);
        assert!(t.validate().is_ok());
        // one source (digitizer), one sink (gui)
        let sources: Vec<_> = t.source_threads().collect();
        let sinks: Vec<_> = t.sink_threads().collect();
        assert_eq!(sources.len(), 1);
        assert_eq!(sinks.len(), 1);
        assert_eq!(t.name(sources[0]), "digitizer");
        assert_eq!(t.name(sinks[0]), "gui");
    }

    #[test]
    fn channel_degrees() {
        let t = TrackerGraph::topology();
        // C3 (frames to detection) has two consumers; every other channel 1.
        for n in t.node_ids() {
            if t.kind(n).is_buffer() {
                let expected = if t.name(n) == "C3" { 2 } else { 1 };
                assert_eq!(t.out_degree(n), expected, "channel {}", t.name(n));
            }
        }
        // digitizer fans out to 3 channels; GUI consumes 2.
        for n in t.node_ids() {
            match t.name(n) {
                "digitizer" => assert_eq!(t.out_degree(n), 3),
                "gui" => assert_eq!(t.in_degree(n), 2),
                "target-det-1" | "target-det-2" => assert_eq!(t.in_degree(n), 3),
                _ => {}
            }
        }
    }

    #[test]
    fn render_contains_all_names() {
        let s = TrackerGraph::render();
        for task in TASKS {
            assert!(s.contains(task), "missing {task}");
        }
        for (c, _, _) in CHANNELS {
            assert!(s.contains(c), "missing {c}");
        }
    }
}
