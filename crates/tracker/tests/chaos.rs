//! Chaos acceptance test: crash the Motion-Mask stage (change detection)
//! mid-run and verify the ARU-min feedback loop re-converges.
//!
//! The paper's mechanism has no persistent state outside the channels, so a
//! crashed-and-restarted task should pull the whole loop back to the same
//! operating point: the digitizer's paced production period after recovery
//! must match its pre-fault steady state within 10%.

use aru_core::{
    AimdParams, AruConfig, ControllerConfig, HysteresisParams, PidParams, RetryPolicy,
};
use aru_metrics::TraceEvent;
use tracker::app_sim::{run_sim, SimTrackerParams, TrackerConfigId};
use desim::FaultPlan;
use vtime::Micros;

/// Every control law (DESIGN.md §13), for the law × scenario matrix below.
fn all_laws() -> Vec<ControllerConfig> {
    vec![
        ControllerConfig::Direct,
        ControllerConfig::Aimd(AimdParams::default()),
        ControllerConfig::Pid(PidParams::default()),
        ControllerConfig::Hysteresis(HysteresisParams::default()),
    ]
}

/// Mean gap between consecutive iteration-ends of `task` inside `[lo, hi)`
/// microseconds — the task's observed production period in that window.
fn mean_period(r: &desim::SimReport, task: &str, lo: u64, hi: u64) -> f64 {
    let node = r
        .topo
        .node_ids()
        .find(|&n| r.topo.name(n) == task)
        .expect("task exists in topology");
    let ends: Vec<u64> = r
        .trace
        .events()
        .iter()
        .filter_map(|e| match e {
            TraceEvent::IterEnd { t, iter, .. } if iter.node == node => Some(t.as_micros()),
            _ => None,
        })
        .filter(|&t| (lo..hi).contains(&t))
        .collect();
    assert!(ends.len() > 2, "{task} produced in [{lo},{hi}): {}", ends.len());
    (ends[ends.len() - 1] - ends[0]) as f64 / (ends.len() - 1) as f64
}

#[test]
fn aru_min_reconverges_after_change_detection_crash() {
    let crash_at = Micros::from_secs(60);
    let params = SimTrackerParams::new(AruConfig::aru_min(), TrackerConfigId::OneNode)
        .with_duration(Micros::from_secs(120))
        .with_seed(2005)
        .with_faults(FaultPlan::none().crash("change-detection", crash_at))
        .with_retry(RetryPolicy::constant(3, Micros::from_millis(500)));
    let r = run_sim(&params);

    let faults = r.analyze().faults;
    assert_eq!(faults.crashes, 1, "{faults}");
    assert_eq!(faults.restarts, 1, "{faults}");

    // Digitizer pacing period: pre-fault steady state [30s, 60s) vs the
    // last 30 s of the run, well after the 500 ms restart backoff.
    let before = mean_period(&r, "digitizer", 30_000_000, 60_000_000);
    let after = mean_period(&r, "digitizer", 90_000_000, 120_000_000);
    let drift = (after - before).abs() / before;
    assert!(
        drift < 0.10,
        "source pacing re-converged: before {before:.0}us, after {after:.0}us \
         ({:.1}% drift)",
        drift * 100.0
    );
    // And the crash did not freeze the pipeline: outputs continue to the end.
    let last_out = r
        .trace
        .events()
        .iter()
        .filter_map(|e| match e {
            TraceEvent::SinkOutput { t, .. } => Some(t.as_micros()),
            _ => None,
        })
        .max()
        .unwrap();
    assert!(last_out > 110_000_000, "pipeline alive to the end: {last_out}");
}

/// Law × crash matrix: the re-convergence guarantee above is not a Direct
/// artefact. Whatever guardrail shapes the pacing target — AIMD approach,
/// PID tracking, hysteresis dead-band — the loop must pull the digitizer
/// back to within 10% of its pre-fault operating point after the
/// change-detection stage crashes and restarts.
#[test]
fn every_law_reconverges_after_change_detection_crash() {
    for law in all_laws() {
        let label = law.label();
        let crash_at = Micros::from_secs(60);
        let cfg = AruConfig::aru_min().with_control(law);
        let params = SimTrackerParams::new(cfg, TrackerConfigId::OneNode)
            .with_duration(Micros::from_secs(120))
            .with_seed(2005)
            .with_faults(FaultPlan::none().crash("change-detection", crash_at))
            .with_retry(RetryPolicy::constant(3, Micros::from_millis(500)));
        let r = run_sim(&params);

        let faults = r.analyze().faults;
        assert_eq!(faults.crashes, 1, "[{label}] {faults}");
        assert_eq!(faults.restarts, 1, "[{label}] {faults}");

        let before = mean_period(&r, "digitizer", 30_000_000, 60_000_000);
        let after = mean_period(&r, "digitizer", 90_000_000, 120_000_000);
        let drift = (after - before).abs() / before;
        assert!(
            drift < 0.10,
            "[{label}] source pacing re-converged: before {before:.0}us, \
             after {after:.0}us ({:.1}% drift)",
            drift * 100.0
        );
        // The law actually ran: decisions were recorded for the digitizer.
        let decisions = r
            .trace
            .events()
            .iter()
            .filter(|e| matches!(e, TraceEvent::PaceDecision { .. }))
            .count();
        assert!(decisions > 0, "[{label}] pacing decisions recorded");
    }
}

/// Law × staleness matrix: when the feedback path dies for good, every law
/// must decay to un-paced — the guardrail shapes the pacing target, it must
/// never pin the source to a stale one. The digitizer's period after the
/// staleness horizon expires must fall back toward its natural (busy-bound)
/// rate, well below the paced steady state.
#[test]
fn every_law_falls_back_to_unpaced_on_staleness() {
    for law in all_laws() {
        let label = law.label();
        let cfg = AruConfig::aru_min()
            .with_control(law)
            .with_staleness(Micros::from_secs(2));
        // Feedback to the digitizer dies at t=30s and never recovers.
        let params = SimTrackerParams::new(cfg, TrackerConfigId::OneNode)
            .with_duration(Micros::from_secs(60))
            .with_seed(2005)
            .with_faults(FaultPlan::none().drop_summaries(
                "digitizer",
                Micros::from_secs(30),
                Micros::from_secs(60),
            ));
        let r = run_sim(&params);

        let paced = mean_period(&r, "digitizer", 15_000_000, 30_000_000);
        let revved = mean_period(&r, "digitizer", 45_000_000, 60_000_000);
        assert!(
            revved < paced * 0.5,
            "[{label}] stale feedback released the pacer: paced {paced:.0}us, \
             after staleness {revved:.0}us"
        );
        let stale = r
            .trace
            .events()
            .iter()
            .filter(|e| matches!(e, TraceEvent::StaleSummary { .. }))
            .count();
        assert!(stale > 0, "[{label}] staleness was detected");
    }
}

/// Chaos on the real threaded runtime rather than the simulator, on both
/// queue backends: an injected digitizer crash is caught by the
/// supervisor, the task restarts under its retry budget, and the queue
/// pipeline keeps delivering — frames already queued at the crash instant
/// survive on either backend.
#[test]
fn queue_tracker_crash_recovery_on_both_backends() {
    use stampede::QueueBackend;
    use tracker::{build_queue_tracker, QueueTrackerParams};
    for backend in [QueueBackend::Mutex, QueueBackend::lock_free()] {
        let mut params = QueueTrackerParams::new(AruConfig::aru_min(), backend);
        params.retry = RetryPolicy::constant(3, Micros::from_millis(5));
        params.crash_digitizer_at = Some(2);
        let tracker = build_queue_tracker(&params).unwrap();
        let report = tracker.runtime.run_for(Micros::from_millis(1200)).unwrap();
        assert!(
            report.outputs() > 2,
            "{backend:?}: outputs {}",
            report.outputs()
        );
        assert!(
            !tracker.detections.lock().is_empty(),
            "{backend:?}: no detections after restart"
        );
    }
}

/// The same crash with no restart budget starves the pipeline: the GUI's
/// driver channel (C6, fed through change detection) dries up, so this is
/// the control run proving the supervisor — not luck — keeps it alive above.
#[test]
fn without_retries_the_pipeline_starves() {
    let params = SimTrackerParams::new(AruConfig::aru_min(), TrackerConfigId::OneNode)
        .with_duration(Micros::from_secs(60))
        .with_seed(2005)
        .with_faults(FaultPlan::none().crash("change-detection", Micros::from_secs(20)))
        .with_retry(RetryPolicy::none());
    let r = run_sim(&params);
    let faults = r.analyze().faults;
    assert_eq!(faults.crashes, 1, "{faults}");
    assert_eq!(faults.restarts, 0, "{faults}");
    let last_out = r
        .trace
        .events()
        .iter()
        .filter_map(|e| match e {
            TraceEvent::SinkOutput { t, .. } => Some(t.as_micros()),
            _ => None,
        })
        .max()
        .unwrap();
    // Residual in-flight items drain shortly after the crash; nothing new
    // reaches the sink for the rest of the run.
    assert!(
        last_out < 40_000_000,
        "dead change-detection starves the sink: last output at {last_out}"
    );
}
