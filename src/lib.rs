//! # stampede-aru
//!
//! A full Rust reproduction of *"Adaptive Resource Utilization via Feedback
//! Control for Streaming Applications"* (Mandviwala, Harel, Ramachandran,
//! Knobe; IPDPS/IPPS 2005): a Stampede-like timestamped-channel runtime
//! with the paper's ARU feedback mechanism, its garbage collectors, its
//! measurement infrastructure, a deterministic cluster simulator, the
//! color-based people-tracker evaluation application, and the harness that
//! regenerates every table and figure of the paper's evaluation.
//!
//! This facade crate re-exports the workspace members:
//!
//! * [`aru`] ([`aru_core`]) — the paper's contribution: STP measurement,
//!   backward summary-STP propagation, min/max compression, pacing;
//! * [`runtime`] ([`stampede`]) — the threaded Stampede-like runtime;
//! * [`gc`] ([`aru_gc`]) — REF, Dead-Timestamp (DGC) and Ideal (IGC)
//!   collectors;
//! * [`metrics`] ([`aru_metrics`]) — event traces and postmortem analyses;
//! * [`sim`] ([`desim`]) — the discrete-event cluster simulator;
//! * [`tracker`] — the color-based people tracker;
//! * [`experiments`] — the table/figure reproduction harness;
//! * [`vtime`] — timestamps, clocks, time-weighted series.
//!
//! See `examples/quickstart.rs` for a five-minute tour.

pub use aru_core as aru;
pub use aru_gc as gc;
pub use aru_metrics as metrics;
pub use desim as sim;
pub use experiments;
pub use stampede as runtime;
pub use tracker;
pub use vtime;

/// Convenient top-level prelude for applications.
pub mod prelude {
    pub use aru_core::{AruConfig, CompressOp, FilterSpec, PacingPolicy, Stp};
    pub use aru_gc::GcMode;
    pub use stampede::prelude::*;
    pub use vtime::{Micros, SimTime, Timestamp};
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_compile() {
        let _ = crate::aru::AruConfig::aru_min();
        let _ = crate::gc::GcMode::Dgc;
        let _ = crate::vtime::Timestamp::ZERO;
    }
}
