//! Offline stand-in for the `rand` crate.
//!
//! Provides the subset this workspace uses — `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, and `RngExt::random::<T>()` — backed by
//! xoshiro256** seeded through SplitMix64 (the construction the xoshiro
//! authors recommend). Deterministic per seed, which is the property the
//! simulator's noise and fault plans depend on; the streams do NOT match
//! the real `rand` crate's `StdRng`.

/// Types that can construct themselves from an RNG's raw u64 stream.
pub trait FromRandom: Sized {
    fn from_random<R: RngExt + ?Sized>(rng: &mut R) -> Self;
}

/// Random-value generation, mirroring `rand::Rng::random`.
pub trait RngExt {
    /// Next raw 64 bits from the generator.
    fn next_u64(&mut self) -> u64;

    /// A uniformly distributed value of `T` (for floats: in `[0, 1)`).
    fn random<T: FromRandom>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_random(self)
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

impl FromRandom for u64 {
    fn from_random<R: RngExt + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl FromRandom for u32 {
    fn from_random<R: RngExt + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl FromRandom for usize {
    fn from_random<R: RngExt + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl FromRandom for bool {
    fn from_random<R: RngExt + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl FromRandom for f64 {
    fn from_random<R: RngExt + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl FromRandom for f32 {
    fn from_random<R: RngExt + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// SplitMix64 — used to expand a u64 seed into xoshiro state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub mod rngs {
    use super::{splitmix64, RngExt, SeedableRng};

    /// xoshiro256** generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point; splitmix64 cannot
            // produce four zeros from any seed, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngExt for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1]
                .wrapping_mul(5)
                .rotate_left(7)
                .wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(99);
        let mut b = StdRng::seed_from_u64(99);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(100);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut r = StdRng::seed_from_u64(7);
        let xs: Vec<f64> = (0..10_000).map(|_| r.random::<f64>()).collect();
        assert!(xs.iter().all(|&x| (0.0..1.0).contains(&x)));
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn bool_is_balanced() {
        let mut r = StdRng::seed_from_u64(3);
        let trues = (0..10_000).filter(|_| r.random::<bool>()).count();
        assert!((4_500..5_500).contains(&trues), "{trues}");
    }
}
