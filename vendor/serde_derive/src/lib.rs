//! Offline stand-in for the `serde_derive` proc-macro crate.
//!
//! The workspace derives `Serialize`/`Deserialize` on its metric and spec
//! types so they stay serialization-ready, but no code path actually
//! serializes (there is no `serde_json` or bound on the traits anywhere).
//! With no crates.io access we cannot build the real derive (it needs
//! `syn`/`quote`), so these derives accept the input and expand to an empty
//! token stream. If a future change introduces real serialization, replace
//! this vendored shim with the real crates.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
