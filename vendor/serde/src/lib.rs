//! Offline stand-in for the `serde` crate.
//!
//! Exposes `Serialize`/`Deserialize` in both namespaces the way real serde
//! does: as traits (types here, nothing in the workspace bounds on them)
//! and as derive macros (re-exported from the vendored `serde_derive`,
//! which expands them to nothing). This keeps every
//! `#[derive(Serialize, Deserialize)]` in the workspace compiling without
//! crates.io access.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
