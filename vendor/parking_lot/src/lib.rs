//! Offline stand-in for the `parking_lot` crate.
//!
//! This workspace builds in environments with no crates.io access, so the
//! external synchronization crate is replaced by this shim: the same API
//! surface (`Mutex`/`RwLock` guards returned without a `Result`, `Condvar`
//! waiting on our own guard type), implemented over `std::sync`. Poisoning
//! is deliberately swallowed — parking_lot has no poisoning, and the
//! runtime's supervisor handles task panics itself.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::Duration;

/// Mutual exclusion, `parking_lot` style: `lock()` returns the guard
/// directly.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            // A poisoned lock means some thread panicked while holding it;
            // parking_lot would hand the data out regardless, so we do too.
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// Guard for [`Mutex`]. Holds the std guard in an `Option` so [`Condvar`]
/// can take it across a wait.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

/// Result of a timed condition-variable wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    #[must_use]
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Condition variable operating on this shim's [`MutexGuard`].
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard present");
        let g = self.inner.wait(g).unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard present");
        let (g, res) = match self.inner.wait_timeout(g, timeout) {
            Ok((g, r)) => (g, r.timed_out()),
            Err(p) => {
                let (g, r) = p.into_inner();
                (g, r.timed_out())
            }
        };
        guard.inner = Some(g);
        WaitTimeoutResult { timed_out: res }
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

/// Reader-writer lock, `parking_lot` style.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// Shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

/// Exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let c = Condvar::new();
        let mut g = m.lock();
        let r = c.wait_for(&mut g, Duration::from_millis(5));
        assert!(r.timed_out());
    }

    #[test]
    fn condvar_notify_wakes() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, c) = &*p2;
            let mut done = m.lock();
            while !*done {
                c.wait(&mut done);
            }
        });
        std::thread::sleep(Duration::from_millis(5));
        let (m, c) = &*pair;
        *m.lock() = true;
        c.notify_all();
        h.join().unwrap();
    }

    #[test]
    fn poisoned_mutex_still_locks() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
