//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of proptest that this workspace's property tests
//! use: the [`strategy::Strategy`] trait with `prop_map`/`prop_flat_map`,
//! range and tuple strategies, `prop::collection::vec`, `any::<T>()`,
//! `ProptestConfig::with_cases`, and the `proptest!`/`prop_assert!`/
//! `prop_assert_eq!` macros.
//!
//! Differences from the real crate, both deliberate:
//! - **No shrinking.** A failing case reports its generated inputs and the
//!   assertion message; it is not minimized.
//! - **Deterministic seeding.** Each test's RNG is seeded from the test's
//!   name, so every run (locally and in CI) exercises the same cases.
//!   `*.proptest-regressions` files are ignored.

pub mod strategy {
    use super::test_runner::TestRng;
    use rand::RngExt;

    /// A value generator. Mirrors `proptest::strategy::Strategy`, minus
    /// shrinking: a strategy only needs to produce values.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }
    }

    /// Strategy adapter produced by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Strategy adapter produced by [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, T> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        T: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    // Modulo bias is irrelevant at test-range sizes.
                    let off = (rng.next_u64() as u128) % span;
                    (self.start as i128 + off as i128) as $t
                }
            }
            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let off = (rng.next_u64() as u128) % span;
                    (lo as i128 + off as i128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let u: f64 = rng.random();
                    self.start + (u as $t) * (self.end - self.start)
                }
            }
        )*};
    }
    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
    tuple_strategy!(A, B, C, D, E, F, G);
    tuple_strategy!(A, B, C, D, E, F, G, H);
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use rand::RngExt;

    /// Inclusive length bounds for collection strategies.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<::std::ops::Range<usize>> for SizeRange {
        fn from(r: ::std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<::std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: ::std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.hi - self.size.lo) as u64 + 1;
            let len = self.size.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Mirror of `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod arbitrary {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use rand::RngExt;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary {
        type Strategy: Strategy<Value = Self>;
        fn arbitrary() -> Self::Strategy;
    }

    /// Mirror of `proptest::arbitrary::any`.
    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }

    /// Full-domain strategy used by [`any`].
    pub struct AnyStrategy<T> {
        _marker: ::std::marker::PhantomData<T>,
    }

    macro_rules! arbitrary_impl {
        ($($t:ty => $gen:expr),* $(,)?) => {$(
            impl Strategy for AnyStrategy<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let f: fn(&mut TestRng) -> $t = $gen;
                    f(rng)
                }
            }
            impl Arbitrary for $t {
                type Strategy = AnyStrategy<$t>;
                fn arbitrary() -> Self::Strategy {
                    AnyStrategy { _marker: ::std::marker::PhantomData }
                }
            }
        )*};
    }

    arbitrary_impl! {
        bool => |rng| rng.next_u64() & 1 == 1,
        u8 => |rng| rng.next_u64() as u8,
        u16 => |rng| rng.next_u64() as u16,
        u32 => |rng| rng.next_u64() as u32,
        u64 => |rng| rng.next_u64(),
        usize => |rng| rng.next_u64() as usize,
        i32 => |rng| rng.next_u64() as i32,
        i64 => |rng| rng.next_u64() as i64,
        f64 => |rng| rng.random(),
    }
}

pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// RNG threaded through strategies. An alias so strategies stay simple.
    pub type TestRng = StdRng;

    /// Mirror of `proptest::test_runner::Config` (the fields this
    /// workspace touches).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// A failed property-test case (carried back out of the test closure
    /// by `prop_assert!`).
    #[derive(Debug)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl ::std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut ::std::fmt::Formatter<'_>) -> ::std::fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// Drives the cases of one `proptest!` test function.
    pub struct TestRunner {
        rng: TestRng,
        cases: u32,
    }

    impl TestRunner {
        /// Seed the RNG from the test's name (FNV-1a), so runs are
        /// reproducible everywhere without a regressions file.
        #[must_use]
        pub fn new(config: &ProptestConfig, test_name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRunner {
                rng: TestRng::seed_from_u64(h),
                cases: config.cases,
            }
        }

        #[must_use]
        pub fn cases(&self) -> u32 {
            self.cases
        }

        pub fn rng(&mut self) -> &mut TestRng {
            &mut self.rng
        }
    }
}

/// Mirror of `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};

    /// Mirror of `proptest::prelude::prop` (module re-exports so
    /// `prop::collection::vec(..)` resolves).
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Mirror of `proptest!`. Supports an optional leading
/// `#![proptest_config(expr)]` followed by test functions whose arguments
/// are `name in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (config = $cfg:expr;) => {};
    (config = $cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        #[test]
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut runner = $crate::test_runner::TestRunner::new(&config, stringify!($name));
            for case in 0..runner.cases() {
                $(
                    let $arg = $crate::strategy::Strategy::generate(&($strat), runner.rng());
                )*
                let outcome = (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "property '{}' failed at case {} of {}: {}\n(inputs: {})",
                        stringify!($name),
                        case + 1,
                        runner.cases(),
                        e,
                        stringify!($($arg),*),
                    );
                }
            }
        }
        $crate::__proptest_fns! { config = $cfg; $($rest)* }
    };
}

/// Mirror of `prop_assert!` — fails the current case without aborting the
/// whole process (the runner turns it into a panic with context).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Mirror of `prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs == *rhs,
            "assertion failed: {:?} == {:?}",
            lhs,
            rhs
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(*lhs == *rhs, $($fmt)+);
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_vec_generate_in_bounds() {
        let cfg = crate::test_runner::ProptestConfig::default();
        let mut runner = crate::test_runner::TestRunner::new(&cfg, "bounds");
        for _ in 0..200 {
            let x = Strategy::generate(&(3u64..10), runner.rng());
            assert!((3..10).contains(&x));
            let f = Strategy::generate(&(-2.0f64..2.0), runner.rng());
            assert!((-2.0..2.0).contains(&f));
            let v = Strategy::generate(&prop::collection::vec(0u8..5, 1..4), runner.rng());
            assert!((1..4).contains(&v.len()));
            assert!(v.iter().all(|&b| b < 5));
        }
    }

    #[test]
    fn seeding_is_deterministic_per_name() {
        let cfg = crate::test_runner::ProptestConfig::default();
        let mut a = crate::test_runner::TestRunner::new(&cfg, "same");
        let mut b = crate::test_runner::TestRunner::new(&cfg, "same");
        let sa: Vec<u64> = (0..32)
            .map(|_| Strategy::generate(&(0u64..1_000_000), a.rng()))
            .collect();
        let sb: Vec<u64> = (0..32)
            .map(|_| Strategy::generate(&(0u64..1_000_000), b.rng()))
            .collect();
        assert_eq!(sa, sb);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro path itself: map, flat_map, tuples, any.
        fn macro_roundtrip(
            n in (1usize..5).prop_flat_map(|n| {
                prop::collection::vec(any::<bool>(), n..=n).prop_map(move |v| (n, v))
            }),
            x in (1u64..100).prop_map(|v| v * 2),
        ) {
            prop_assert_eq!(n.0, n.1.len());
            prop_assert!(x % 2 == 0, "x = {}", x);
        }
    }
}
