//! Offline stand-in for the `bytes` crate.
//!
//! Only the immutable [`Bytes`] container is provided — a cheaply
//! cloneable byte buffer that is either a borrowed `&'static [u8]` or a
//! reference-counted heap allocation. Clones share storage (no copy),
//! which is the property the Stampede channel payloads rely on.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// Cheaply cloneable, immutable byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    repr: Repr,
}

#[derive(Clone)]
enum Repr {
    Static(&'static [u8]),
    Shared(Arc<[u8]>),
}

impl Default for Repr {
    fn default() -> Self {
        Repr::Static(&[])
    }
}

impl Bytes {
    #[must_use]
    pub const fn new() -> Self {
        Bytes {
            repr: Repr::Static(&[]),
        }
    }

    #[must_use]
    pub const fn from_static(bytes: &'static [u8]) -> Self {
        Bytes {
            repr: Repr::Static(bytes),
        }
    }

    #[must_use]
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            repr: Repr::Shared(Arc::from(data)),
        }
    }

    #[must_use]
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }

    fn as_slice(&self) -> &[u8] {
        match &self.repr {
            Repr::Static(s) => s,
            Repr::Shared(s) => s,
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes {
            repr: Repr::Shared(Arc::from(v)),
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::from_static(s)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::from_static(s.as_bytes())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_and_owned() {
        let s = Bytes::from_static(b"abc");
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        let o = Bytes::from(vec![1u8, 2, 3, 4]);
        assert_eq!(o.len(), 4);
        assert_eq!(&o[..2], &[1, 2]);
    }

    #[test]
    fn clones_share_storage() {
        let o = Bytes::from(vec![0u8; 1024]);
        let c = o.clone();
        assert_eq!(o.as_slice().as_ptr(), c.as_slice().as_ptr());
    }

    #[test]
    fn equality_and_debug() {
        assert_eq!(Bytes::from_static(b"xy"), Bytes::copy_from_slice(b"xy"));
        assert_eq!(format!("{:?}", Bytes::from_static(b"a\n")), "b\"a\\n\"");
    }
}
