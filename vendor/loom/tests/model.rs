//! Self-tests for the loom stand-in: the scheduler must catch classic
//! concurrency bugs and pass classic correct protocols.

use loom::sync::atomic::{AtomicU64, Ordering};
use loom::sync::{Arc, Condvar, Mutex};

#[test]
fn mutex_preserves_read_modify_write() {
    loom::model(|| {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let m = Arc::clone(&m);
                loom::thread::spawn(move || {
                    let mut g = m.lock().unwrap();
                    let v = *g;
                    *g = v + 1;
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock().unwrap(), 2);
    });
}

#[test]
fn atomic_interleavings_are_explored() {
    // A non-atomic load/store pair CAN lose an update under some schedule;
    // the model must find that schedule (so the max over all schedules is
    // observable, and a fetch_add-based version never loses one).
    use std::sync::Mutex as StdMutex;
    let lost_seen = std::sync::Arc::new(StdMutex::new(false));
    let seen = std::sync::Arc::clone(&lost_seen);
    loom::model(move || {
        let a = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let a = Arc::clone(&a);
                loom::thread::spawn(move || {
                    let v = a.load(Ordering::SeqCst);
                    a.store(v + 1, Ordering::SeqCst);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        if a.load(Ordering::SeqCst) == 1 {
            *seen.lock().unwrap() = true;
        }
    });
    assert!(
        *lost_seen.lock().unwrap(),
        "exploration never found the lost-update interleaving"
    );
}

#[test]
fn condvar_handoff_is_never_lost() {
    // Correct predicate-loop protocol: must pass under every schedule,
    // including notify-before-wait.
    loom::model(|| {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = loom::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut ready = m.lock().unwrap();
            while !*ready {
                ready = cv.wait(ready).unwrap();
            }
        });
        let (m, cv) = &*pair;
        *m.lock().unwrap() = true;
        cv.notify_one();
        h.join().unwrap();
    });
}

#[test]
#[should_panic(expected = "DEADLOCK")]
fn lost_wakeup_is_detected_as_deadlock() {
    // Broken protocol: the waiter re-checks nothing and the signal is sent
    // only once, before a schedule where the waiter has not yet blocked —
    // a lost wakeup. The model must find the schedule and flag it.
    loom::model(|| {
        let pair = Arc::new((Mutex::new(()), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = loom::thread::spawn(move || {
            let (m, cv) = &*p2;
            let g = m.lock().unwrap();
            // BUG: waits unconditionally; a notify that arrived before
            // this point is lost forever.
            let _g = cv.wait(g).unwrap();
        });
        let (_m, cv) = &*pair;
        cv.notify_one();
        h.join().unwrap();
    });
}

#[test]
fn timed_wait_explores_the_timeout_path() {
    // Nobody ever notifies: the only way out is the modeled timeout, so
    // the model must drive every schedule through it.
    loom::model(|| {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let (m, cv) = &*pair;
        let g = m.lock().unwrap();
        let (_g, res) = cv
            .wait_timeout(g, std::time::Duration::from_millis(1))
            .unwrap();
        assert!(res.timed_out());
    });
}

#[test]
fn join_returns_thread_value() {
    loom::model(|| {
        let h = loom::thread::spawn(|| 41u64 + 1);
        assert_eq!(h.join().unwrap(), 42);
    });
}
