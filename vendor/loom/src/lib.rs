//! Offline stand-in for the `loom` permutation-testing / model-checking
//! crate.
//!
//! This workspace builds with no crates.io access, so — like the sibling
//! `parking_lot`/`proptest` shims — the external crate is replaced by a
//! self-contained implementation with the same API surface:
//!
//! * [`model`] runs a closure repeatedly under a **bounded exhaustive
//!   scheduler**: only one modeled thread runs at a time, every visible
//!   synchronization operation is a scheduling point, and the driver
//!   explores every reachable interleaving (within the preemption bound)
//!   depth-first. A panic, assertion failure, deadlock, or lost wakeup on
//!   *any* explored schedule fails the test, with the offending choice
//!   sequence printed.
//! * [`sync`] provides `Mutex` / `Condvar` / `RwLock` / atomics with the
//!   `std::sync` API, backed by the scheduler inside a model and falling
//!   back to plain `std::sync` outside one.
//! * [`thread`] provides `spawn` / `JoinHandle` / `yield_now`.
//!
//! Differences from the real loom (documented, deliberate):
//!
//! * Memory model is **sequential consistency only** — weak-memory
//!   reorderings are not explored. Lock/condvar protocol bugs (lost
//!   wakeups, deadlocks, ordering races) are fully visible at this level;
//!   relaxed-atomic publication bugs are the ThreadSanitizer lane's job.
//! * `RwLock` is modeled as an exclusive lock (readers serialize). This
//!   explores a superset of writer interleavings and never hides a
//!   deadlock that real shared-read execution could hit, because no code
//!   path in this workspace blocks while holding a read guard.
//! * Exceeding `LOOM_MAX_ITERATIONS` stops exploration with a warning
//!   instead of failing: the schedules already checked still checked.
//!
//! Environment knobs: `LOOM_MAX_PREEMPTIONS` (default 2),
//! `LOOM_MAX_ITERATIONS` (default 100 000).

mod rt;

pub use rt::model;

pub mod thread {
    //! Modeled threads (std fallback outside a model).

    use crate::rt;
    use std::sync::{Arc, Mutex as OsMutex};

    enum Inner<T> {
        Model {
            tid: usize,
            result: Arc<OsMutex<Option<T>>>,
        },
        Std(std::thread::JoinHandle<T>),
    }

    /// Handle to a spawned (possibly modeled) thread.
    pub struct JoinHandle<T> {
        inner: Inner<T>,
    }

    impl<T> JoinHandle<T> {
        /// Wait for the thread to finish. A modeled thread that panicked
        /// aborts the whole execution before `join` can observe it, so the
        /// modeled arm always returns `Ok`.
        pub fn join(self) -> std::thread::Result<T> {
            match self.inner {
                Inner::Model { tid, result } => {
                    rt::with_current(|exec, me| exec.join_thread(me, tid));
                    let v = result
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .take()
                        .expect("joined thread left no result");
                    Ok(v)
                }
                Inner::Std(h) => h.join(),
            }
        }
    }

    /// Spawn a thread. Inside a model the thread is scheduler-controlled;
    /// outside one this is `std::thread::spawn`.
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        if rt::in_model() {
            rt::yield_point();
            let result: Arc<OsMutex<Option<T>>> = Arc::new(OsMutex::new(None));
            let slot = Arc::clone(&result);
            let tid = rt::with_current(|exec, _| {
                exec.spawn_thread(move || {
                    let v = f();
                    *slot.lock().unwrap_or_else(std::sync::PoisonError::into_inner) = Some(v);
                })
            });
            JoinHandle {
                inner: Inner::Model { tid, result },
            }
        } else {
            JoinHandle {
                inner: Inner::Std(std::thread::spawn(f)),
            }
        }
    }

    /// A pure scheduling point (no-op outside a model).
    pub fn yield_now() {
        if rt::in_model() {
            rt::yield_point();
        } else {
            std::thread::yield_now();
        }
    }
}

pub mod sync {
    //! Scheduler-aware synchronization primitives, `std::sync`-shaped.

    use crate::rt;
    use std::cell::UnsafeCell;
    use std::fmt;
    use std::ops::{Deref, DerefMut};
    use std::sync::{LockResult, PoisonError, TryLockError, TryLockResult};
    use std::time::Duration;

    pub use std::sync::Arc;

    // ---- Mutex -------------------------------------------------------------

    enum MutexRepr<T> {
        /// Registered with the current execution's scheduler.
        Model { id: usize, data: UnsafeCell<T> },
        /// Created outside a model: plain std.
        Std(std::sync::Mutex<T>),
    }

    /// Mutex whose lock/unlock are scheduling points inside a model.
    pub struct Mutex<T> {
        repr: MutexRepr<T>,
    }

    // The Model arm hands out `&T`/`&mut T` from the UnsafeCell only while
    // the scheduler has granted this thread exclusive ownership.
    unsafe impl<T: Send> Send for Mutex<T> {}
    unsafe impl<T: Send> Sync for Mutex<T> {}

    impl<T> Mutex<T> {
        pub fn new(value: T) -> Self {
            let repr = match rt::try_with_current(|exec, _| exec.register_mutex()) {
                Some(id) => MutexRepr::Model {
                    id,
                    data: UnsafeCell::new(value),
                },
                None => MutexRepr::Std(std::sync::Mutex::new(value)),
            };
            Mutex { repr }
        }

        pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
            match &self.repr {
                MutexRepr::Model { id, .. } => {
                    rt::yield_point();
                    rt::with_current(|exec, me| exec.mutex_lock(me, *id));
                    Ok(MutexGuard {
                        inner: GuardRepr::Model { mx: self, id: *id },
                    })
                }
                MutexRepr::Std(m) => Ok(MutexGuard {
                    inner: GuardRepr::Std(m.lock().unwrap_or_else(PoisonError::into_inner)),
                }),
            }
        }

        pub fn try_lock(&self) -> TryLockResult<MutexGuard<'_, T>> {
            match &self.repr {
                MutexRepr::Model { id, .. } => {
                    rt::yield_point();
                    if rt::with_current(|exec, me| exec.mutex_try_lock(me, *id)) {
                        Ok(MutexGuard {
                            inner: GuardRepr::Model { mx: self, id: *id },
                        })
                    } else {
                        Err(TryLockError::WouldBlock)
                    }
                }
                MutexRepr::Std(m) => match m.try_lock() {
                    Ok(g) => Ok(MutexGuard {
                        inner: GuardRepr::Std(g),
                    }),
                    Err(TryLockError::Poisoned(p)) => Ok(MutexGuard {
                        inner: GuardRepr::Std(p.into_inner()),
                    }),
                    Err(TryLockError::WouldBlock) => Err(TryLockError::WouldBlock),
                },
            }
        }

        pub fn into_inner(self) -> LockResult<T> {
            match self.repr {
                MutexRepr::Model { data, .. } => Ok(data.into_inner()),
                MutexRepr::Std(m) => Ok(m.into_inner().unwrap_or_else(PoisonError::into_inner)),
            }
        }
    }

    impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("loom::sync::Mutex")
        }
    }

    enum GuardRepr<'a, T> {
        Model { mx: &'a Mutex<T>, id: usize },
        Std(std::sync::MutexGuard<'a, T>),
    }

    /// Guard for [`Mutex`].
    pub struct MutexGuard<'a, T> {
        inner: GuardRepr<'a, T>,
    }

    impl<T> Deref for MutexGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            match &self.inner {
                GuardRepr::Model { mx, .. } => match &mx.repr {
                    // Safety: the scheduler granted exclusive ownership.
                    MutexRepr::Model { data, .. } => unsafe { &*data.get() },
                    MutexRepr::Std(_) => unreachable!(),
                },
                GuardRepr::Std(g) => g,
            }
        }
    }

    impl<T> DerefMut for MutexGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            match &mut self.inner {
                GuardRepr::Model { mx, .. } => match &mx.repr {
                    // Safety: the scheduler granted exclusive ownership.
                    MutexRepr::Model { data, .. } => unsafe { &mut *data.get() },
                    MutexRepr::Std(_) => unreachable!(),
                },
                GuardRepr::Std(g) => g,
            }
        }
    }

    impl<T> Drop for MutexGuard<'_, T> {
        fn drop(&mut self) {
            if let GuardRepr::Model { id, .. } = self.inner {
                rt::with_current(|exec, me| exec.mutex_unlock(me, id));
            }
        }
    }

    // ---- Condvar -----------------------------------------------------------

    /// Result of [`Condvar::wait_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct WaitTimeoutResult {
        timed_out: bool,
    }

    impl WaitTimeoutResult {
        #[must_use]
        pub fn timed_out(&self) -> bool {
            self.timed_out
        }
    }

    enum CondvarRepr {
        Model { id: usize },
        Std(std::sync::Condvar),
    }

    /// Condvar whose wait/notify are scheduling points inside a model. A
    /// modeled timed wait has no real clock: the scheduler may *choose* to
    /// fire the timeout at any point (and must, when nothing else can run),
    /// which explores both the notified and the timed-out path.
    pub struct Condvar {
        repr: CondvarRepr,
    }

    impl Default for Condvar {
        fn default() -> Self {
            Self::new()
        }
    }

    impl Condvar {
        pub fn new() -> Self {
            let repr = match rt::try_with_current(|exec, _| exec.register_condvar()) {
                Some(id) => CondvarRepr::Model { id },
                None => CondvarRepr::Std(std::sync::Condvar::new()),
            };
            Condvar { repr }
        }

        pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
            match &self.repr {
                CondvarRepr::Model { id } => {
                    let (mx, mid) = match &guard.inner {
                        GuardRepr::Model { mx, id } => (*mx, *id),
                        GuardRepr::Std(_) => panic!("modeled Condvar waiting on a std Mutex"),
                    };
                    // The scheduler releases and reacquires the mutex; the
                    // old guard must not run its unlocking Drop.
                    std::mem::forget(guard);
                    rt::yield_point();
                    rt::with_current(|exec, me| exec.cond_wait(me, *id, mid, false));
                    Ok(MutexGuard {
                        inner: GuardRepr::Model { mx, id: mid },
                    })
                }
                CondvarRepr::Std(cv) => {
                    let g = guard
                        .inner_into_std()
                        .unwrap_or_else(|_| panic!("std Condvar waiting on a modeled Mutex"));
                    let g = cv.wait(g).unwrap_or_else(PoisonError::into_inner);
                    Ok(MutexGuard {
                        inner: GuardRepr::Std(g),
                    })
                }
            }
        }

        pub fn wait_timeout<'a, T>(
            &self,
            guard: MutexGuard<'a, T>,
            dur: Duration,
        ) -> LockResult<(MutexGuard<'a, T>, WaitTimeoutResult)> {
            match &self.repr {
                CondvarRepr::Model { id } => {
                    let (mx, mid) = match &guard.inner {
                        GuardRepr::Model { mx, id } => (*mx, *id),
                        GuardRepr::Std(_) => panic!("modeled Condvar waiting on a std Mutex"),
                    };
                    std::mem::forget(guard);
                    rt::yield_point();
                    let timed_out =
                        rt::with_current(|exec, me| exec.cond_wait(me, *id, mid, true));
                    Ok((
                        MutexGuard {
                            inner: GuardRepr::Model { mx, id: mid },
                        },
                        WaitTimeoutResult { timed_out },
                    ))
                }
                CondvarRepr::Std(cv) => {
                    let g = guard
                        .inner_into_std()
                        .unwrap_or_else(|_| panic!("std Condvar waiting on a modeled Mutex"));
                    let (g, r) = match cv.wait_timeout(g, dur) {
                        Ok((g, r)) => (g, r.timed_out()),
                        Err(p) => {
                            let (g, r) = p.into_inner();
                            (g, r.timed_out())
                        }
                    };
                    Ok((
                        MutexGuard {
                            inner: GuardRepr::Std(g),
                        },
                        WaitTimeoutResult { timed_out: r },
                    ))
                }
            }
        }

        pub fn notify_one(&self) {
            match &self.repr {
                CondvarRepr::Model { id } => {
                    rt::with_current(|exec, me| exec.cond_notify_one(me, *id));
                }
                CondvarRepr::Std(cv) => cv.notify_one(),
            }
        }

        pub fn notify_all(&self) {
            match &self.repr {
                CondvarRepr::Model { id } => {
                    rt::with_current(|exec, me| exec.cond_notify_all(me, *id));
                }
                CondvarRepr::Std(cv) => cv.notify_all(),
            }
        }
    }

    impl fmt::Debug for Condvar {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("loom::sync::Condvar")
        }
    }

    impl<'a, T> MutexGuard<'a, T> {
        /// Extract the std guard (Std repr only) without running Drop.
        fn inner_into_std(self) -> Result<std::sync::MutexGuard<'a, T>, Self> {
            // Model guards unlock in Drop, so only the Std arm can be
            // dismantled; a Model guard is handed back untouched.
            match self.inner {
                GuardRepr::Std(_) => {
                    let md = std::mem::ManuallyDrop::new(self);
                    // Safety: `md` is never dropped, so the guard inside is
                    // moved out exactly once.
                    let inner = unsafe { std::ptr::read(&md.inner) };
                    match inner {
                        GuardRepr::Std(g) => Ok(g),
                        GuardRepr::Model { .. } => unreachable!(),
                    }
                }
                GuardRepr::Model { .. } => Err(self),
            }
        }
    }

    // ---- RwLock (modeled as exclusive — see crate docs) --------------------

    /// Reader-writer lock. Inside a model both `read` and `write` take the
    /// exclusive lock (see the crate docs for why that is sound here).
    pub struct RwLock<T> {
        inner: Mutex<T>,
    }

    /// Shared-read guard for [`RwLock`] (exclusive inside a model).
    pub struct RwLockReadGuard<'a, T> {
        inner: MutexGuard<'a, T>,
    }

    /// Exclusive-write guard for [`RwLock`].
    pub struct RwLockWriteGuard<'a, T> {
        inner: MutexGuard<'a, T>,
    }

    impl<T> RwLock<T> {
        pub fn new(value: T) -> Self {
            RwLock {
                inner: Mutex::new(value),
            }
        }

        pub fn read(&self) -> LockResult<RwLockReadGuard<'_, T>> {
            Ok(RwLockReadGuard {
                inner: self.inner.lock().unwrap_or_else(PoisonError::into_inner),
            })
        }

        pub fn write(&self) -> LockResult<RwLockWriteGuard<'_, T>> {
            Ok(RwLockWriteGuard {
                inner: self.inner.lock().unwrap_or_else(PoisonError::into_inner),
            })
        }

        pub fn into_inner(self) -> LockResult<T> {
            self.inner.into_inner()
        }
    }

    impl<T> Deref for RwLockReadGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.inner
        }
    }

    impl<T> Deref for RwLockWriteGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.inner
        }
    }

    impl<T> DerefMut for RwLockWriteGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.inner
        }
    }

    pub mod atomic {
        //! Atomics with a scheduling point before every access.
        //!
        //! Storage is a real `std` atomic accessed while exactly one modeled
        //! thread runs, so values are always coherent; the scheduling point
        //! is what lets the model checker interleave accesses from
        //! different threads. All orderings execute as `SeqCst` (the
        //! stand-in's memory model — see the crate docs).

        use crate::rt;
        pub use std::sync::atomic::Ordering;

        macro_rules! modeled_atomic {
            ($name:ident, $std:ty, $prim:ty) => {
                /// Scheduler-aware atomic (std fallback outside a model).
                #[derive(Debug, Default)]
                pub struct $name {
                    inner: $std,
                }

                impl $name {
                    pub const fn new(v: $prim) -> Self {
                        Self {
                            inner: <$std>::new(v),
                        }
                    }

                    fn touch(&self) {
                        if rt::in_model() {
                            rt::yield_point();
                        }
                    }

                    pub fn load(&self, _order: Ordering) -> $prim {
                        self.touch();
                        self.inner.load(Ordering::SeqCst)
                    }

                    pub fn store(&self, v: $prim, _order: Ordering) {
                        self.touch();
                        self.inner.store(v, Ordering::SeqCst)
                    }

                    pub fn swap(&self, v: $prim, _order: Ordering) -> $prim {
                        self.touch();
                        self.inner.swap(v, Ordering::SeqCst)
                    }

                    pub fn compare_exchange(
                        &self,
                        current: $prim,
                        new: $prim,
                        _success: Ordering,
                        _failure: Ordering,
                    ) -> Result<$prim, $prim> {
                        self.touch();
                        self.inner
                            .compare_exchange(current, new, Ordering::SeqCst, Ordering::SeqCst)
                    }
                }
            };
        }

        macro_rules! modeled_atomic_int {
            ($name:ident, $std:ty, $prim:ty) => {
                impl $name {
                    pub fn fetch_add(&self, v: $prim, _order: Ordering) -> $prim {
                        self.touch();
                        self.inner.fetch_add(v, Ordering::SeqCst)
                    }

                    pub fn fetch_sub(&self, v: $prim, _order: Ordering) -> $prim {
                        self.touch();
                        self.inner.fetch_sub(v, Ordering::SeqCst)
                    }
                }
            };
        }

        modeled_atomic!(AtomicBool, std::sync::atomic::AtomicBool, bool);
        modeled_atomic!(AtomicU32, std::sync::atomic::AtomicU32, u32);
        modeled_atomic!(AtomicU64, std::sync::atomic::AtomicU64, u64);
        modeled_atomic!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);
        modeled_atomic_int!(AtomicU32, std::sync::atomic::AtomicU32, u32);
        modeled_atomic_int!(AtomicU64, std::sync::atomic::AtomicU64, u64);
        modeled_atomic_int!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);
    }
}
