//! The bounded exhaustive scheduler behind [`crate::model`].
//!
//! One *execution* runs the model closure with every modeled thread mapped
//! onto a real OS thread, but only one thread is ever allowed to run: each
//! visible operation (mutex acquire/release, condvar wait/notify, atomic
//! access, spawn/join) first passes through a *scheduling point* where the
//! scheduler picks which thread runs next. Every such pick — and every
//! `notify_one` victim pick — is a recorded **choice point**; the driver
//! re-runs the closure, depth-first, until every reachable combination of
//! choices (under the preemption bound) has been explored.
//!
//! Soundness model: sequential consistency only. Atomics are executed on
//! real `SeqCst` std atomics while a single thread runs, so weak-memory
//! reorderings are *not* explored (the real loom models them; this
//! stand-in trades that for zero dependencies). Lost wakeups, lock-order
//! deadlocks, ordering races and non-atomic protocol bugs are all visible
//! at this level, which is what the runtime's condvar protocols need.
//!
//! Bounding:
//! * `LOOM_MAX_PREEMPTIONS` (default 2) — an execution may switch away
//!   from a thread that could have continued (or fire a condvar timeout)
//!   at most this many times. Exhaustive within the bound; empirically
//!   almost all protocol bugs need ≤2 preemptions.
//! * `LOOM_MAX_ITERATIONS` (default 100 000) — cap on explored schedules.
//!   Exceeding it stops exploration with a warning rather than failing:
//!   the test still checked that many schedules.
//! * `MAX_STEPS` — per-execution step cap; hitting it means the schedule
//!   livelocked (e.g. a timeout-retry spin) and fails the model.

use std::any::Any;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar as OsCondvar, Mutex as OsMutex};

/// Marker payload used to unwind modeled threads when an execution aborts
/// (another thread panicked or a deadlock was detected).
struct AbortExecution;

const MAX_STEPS: usize = 1_000_000;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

#[derive(Clone, Copy, Debug)]
struct Choice {
    chosen: usize,
    options: usize,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Run {
    /// Eligible to be scheduled.
    Runnable,
    /// Waiting to acquire a mutex (re-checks on wake: barging allowed).
    BlockedMutex(usize),
    /// Waiting on a condvar; `timeoutable` waits may be woken by the
    /// scheduler "firing the timeout" (spending one preemption credit).
    BlockedCond { timeoutable: bool },
    /// Waiting for another modeled thread to finish.
    BlockedJoin(usize),
    Finished,
}

#[derive(Default)]
struct MutexState {
    held_by: Option<usize>,
    waiters: Vec<usize>,
}

#[derive(Default)]
struct CondvarState {
    waiters: VecDeque<usize>,
}

struct SchedState {
    threads: Vec<Run>,
    /// `true` when the thread was woken from a `BlockedCond { timeoutable }`
    /// wait by the scheduler firing the timeout rather than by a notify.
    wake_timed_out: Vec<bool>,
    active: usize,
    preemptions_left: usize,
    steps: usize,
    mutexes: Vec<MutexState>,
    condvars: Vec<CondvarState>,
    /// DFS replay/record state for this execution.
    path: Vec<Choice>,
    depth: usize,
    /// First panic payload from a modeled thread (aborts the execution).
    panic: Option<Box<dyn Any + Send>>,
    aborting: bool,
    os_running: usize,
    /// OS handles of every modeled thread, joined by the driver.
    os_handles: Vec<std::thread::JoinHandle<()>>,
}

pub(crate) struct Execution {
    sched: OsMutex<SchedState>,
    cv: OsCondvar,
}

thread_local! {
    static CURRENT: RefCell<Option<(Arc<Execution>, usize)>> = const { RefCell::new(None) };
}

fn current() -> (Arc<Execution>, usize) {
    CURRENT.with(|c| {
        c.borrow()
            .clone()
            .expect("loom primitive used on a thread outside the model")
    })
}

/// Is the calling thread a modeled thread of an active execution?
pub(crate) fn in_model() -> bool {
    CURRENT.with(|c| c.borrow().is_some())
}

impl Execution {
    fn new(max_preemptions: usize, path: Vec<Choice>) -> Arc<Execution> {
        Arc::new(Execution {
            sched: OsMutex::new(SchedState {
                threads: Vec::new(),
                wake_timed_out: Vec::new(),
                active: 0,
                preemptions_left: max_preemptions,
                steps: 0,
                mutexes: Vec::new(),
                condvars: Vec::new(),
                path,
                depth: 0,
                panic: None,
                aborting: false,
                os_running: 0,
                os_handles: Vec::new(),
            }),
            cv: OsCondvar::new(),
        })
    }

    /// Record or replay one choice among `options` alternatives.
    fn choose(st: &mut SchedState, options: usize) -> usize {
        debug_assert!(options > 0);
        if st.depth < st.path.len() {
            let c = st.path[st.depth];
            assert_eq!(
                c.options, options,
                "non-deterministic model: replay diverged at choice {}",
                st.depth
            );
            st.depth += 1;
            c.chosen
        } else {
            st.path.push(Choice { chosen: 0, options });
            st.depth += 1;
            0
        }
    }

    /// Pick the next active thread. Called with the scheduler lock held by
    /// the thread that just finished a visible operation (or blocked).
    fn pick_next(&self, st: &mut SchedState, me: usize) {
        st.steps += 1;
        assert!(
            st.steps < MAX_STEPS,
            "loom: execution exceeded {MAX_STEPS} steps — livelock in the model"
        );
        let runnable: Vec<usize> = (0..st.threads.len())
            .filter(|&t| st.threads[t] == Run::Runnable)
            .collect();
        let timeoutable: Vec<usize> = (0..st.threads.len())
            .filter(|&t| matches!(st.threads[t], Run::BlockedCond { timeoutable: true }))
            .collect();

        if runnable.is_empty() {
            if !timeoutable.is_empty() {
                // Every thread is blocked but a timed wait exists: the
                // timeout is *forced* (real time would deliver it). Take
                // the lowest id — no branching, so timeout-retry loops
                // cannot blow up the schedule space.
                let t = timeoutable[0];
                self.fire_timeout(st, t);
                st.active = t;
                self.cv.notify_all();
                return;
            }
            if st.threads.iter().all(|&t| t == Run::Finished) {
                self.cv.notify_all();
                return; // execution complete
            }
            let dump: Vec<String> = st
                .threads
                .iter()
                .enumerate()
                .map(|(i, t)| format!("thread {i}: {t:?}"))
                .collect();
            st.panic = Some(Box::new(format!(
                "loom: DEADLOCK — every thread is blocked and no timeout can fire\n{}",
                dump.join("\n")
            )));
            st.aborting = true;
            self.cv.notify_all();
            return;
        }

        let i_am_runnable = st.threads.get(me) == Some(&Run::Runnable);
        if i_am_runnable && st.preemptions_left == 0 {
            // Out of preemption budget: keep running the current thread.
            st.active = me;
            return;
        }
        // Options: every runnable thread, plus (budget permitting) firing
        // the timeout of any timed condvar wait.
        let mut options = runnable.clone();
        let n_runnable = options.len();
        if st.preemptions_left > 0 {
            options.extend(&timeoutable);
        }
        let idx = Self::choose(st, options.len());
        let next = options[idx];
        if idx >= n_runnable {
            // Timeout fire: inherently a "spurious" switch — spend budget.
            self.fire_timeout(st, next);
            st.preemptions_left -= 1;
        } else if i_am_runnable && next != me {
            st.preemptions_left -= 1;
        }
        st.active = next;
        if next != me {
            self.cv.notify_all();
        }
    }

    fn fire_timeout(&self, st: &mut SchedState, t: usize) {
        st.threads[t] = Run::Runnable;
        st.wake_timed_out[t] = true;
        for cv in &mut st.condvars {
            cv.waiters.retain(|&w| w != t);
        }
    }

    /// Block the calling OS thread until this modeled thread is scheduled.
    /// Must be called with the scheduler lock held; returns with it held.
    fn wait_my_turn<'a>(
        &'a self,
        mut st: std::sync::MutexGuard<'a, SchedState>,
        me: usize,
    ) -> std::sync::MutexGuard<'a, SchedState> {
        loop {
            if st.aborting {
                drop(st);
                std::panic::panic_any(AbortExecution);
            }
            if st.active == me && st.threads[me] == Run::Runnable {
                return st;
            }
            st = self.cv.wait(st).unwrap_or_else(|p| p.into_inner());
        }
    }

    /// One scheduling point: give the scheduler the chance to run another
    /// thread before the caller's next visible operation.
    pub(crate) fn sched_point(self: &Arc<Self>, me: usize) {
        let mut st = self.sched.lock().unwrap_or_else(|p| p.into_inner());
        if st.aborting {
            drop(st);
            std::panic::panic_any(AbortExecution);
        }
        self.pick_next(&mut st, me);
        let _st = self.wait_my_turn(st, me);
    }

    // ---- objects -----------------------------------------------------------

    pub(crate) fn register_mutex(&self) -> usize {
        let mut st = self.sched.lock().unwrap_or_else(|p| p.into_inner());
        st.mutexes.push(MutexState::default());
        st.mutexes.len() - 1
    }

    pub(crate) fn register_condvar(&self) -> usize {
        let mut st = self.sched.lock().unwrap_or_else(|p| p.into_inner());
        st.condvars.push(CondvarState::default());
        st.condvars.len() - 1
    }

    // ---- mutex -------------------------------------------------------------

    /// Acquire (the scheduling point already happened). Blocks — i.e.
    /// schedules away — while the mutex is held by another thread.
    pub(crate) fn mutex_lock(self: &Arc<Self>, me: usize, mid: usize) {
        let mut st = self.sched.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            if st.aborting {
                drop(st);
                std::panic::panic_any(AbortExecution);
            }
            if st.mutexes[mid].held_by.is_none() {
                st.mutexes[mid].held_by = Some(me);
                return;
            }
            assert_ne!(
                st.mutexes[mid].held_by,
                Some(me),
                "loom: thread {me} re-locked a mutex it already holds"
            );
            st.threads[me] = Run::BlockedMutex(mid);
            st.mutexes[mid].waiters.push(me);
            self.pick_next(&mut st, me);
            st = self.wait_my_turn(st, me);
            // Woken because the holder released; retry (another waiter may
            // have barged in first — both orders are explored).
        }
    }

    /// Non-blocking acquire attempt (the scheduling point already
    /// happened). Returns whether the mutex was taken.
    pub(crate) fn mutex_try_lock(self: &Arc<Self>, me: usize, mid: usize) -> bool {
        let mut st = self.sched.lock().unwrap_or_else(|p| p.into_inner());
        if st.aborting {
            drop(st);
            std::panic::panic_any(AbortExecution);
        }
        if st.mutexes[mid].held_by.is_none() {
            st.mutexes[mid].held_by = Some(me);
            true
        } else {
            false
        }
    }

    pub(crate) fn mutex_unlock(self: &Arc<Self>, me: usize, mid: usize) {
        let mut st = self.sched.lock().unwrap_or_else(|p| p.into_inner());
        debug_assert_eq!(st.mutexes[mid].held_by, Some(me));
        st.mutexes[mid].held_by = None;
        // Wake every waiter; the scheduler explores acquisition orders.
        let waiters = std::mem::take(&mut st.mutexes[mid].waiters);
        for w in waiters {
            if st.threads[w] == Run::BlockedMutex(mid) {
                st.threads[w] = Run::Runnable;
            }
        }
        if st.aborting || std::thread::panicking() {
            // Unwinding guard drop: release without scheduling (a scheduling
            // panic here would double-panic and abort the process).
            return;
        }
        self.pick_next(&mut st, me);
        drop(self.wait_my_turn(st, me));
    }

    // ---- condvar -----------------------------------------------------------

    /// Atomically release `mid` and wait on `cvid`. Returns `true` when the
    /// wake was a (modeled) timeout rather than a notify. Reacquires `mid`
    /// before returning.
    pub(crate) fn cond_wait(
        self: &Arc<Self>,
        me: usize,
        cvid: usize,
        mid: usize,
        timeoutable: bool,
    ) -> bool {
        let mut st = self.sched.lock().unwrap_or_else(|p| p.into_inner());
        // Release the mutex (wake its waiters)…
        debug_assert_eq!(st.mutexes[mid].held_by, Some(me));
        st.mutexes[mid].held_by = None;
        let waiters = std::mem::take(&mut st.mutexes[mid].waiters);
        for w in waiters {
            if st.threads[w] == Run::BlockedMutex(mid) {
                st.threads[w] = Run::Runnable;
            }
        }
        // …and wait on the condvar in the same atomic step.
        st.threads[me] = Run::BlockedCond { timeoutable };
        st.wake_timed_out[me] = false;
        st.condvars[cvid].waiters.push_back(me);
        self.pick_next(&mut st, me);
        st = self.wait_my_turn(st, me);
        let timed_out = st.wake_timed_out[me];
        st.wake_timed_out[me] = false;
        drop(st);
        // Reacquire the mutex (may block again; both orders explored).
        self.mutex_lock(me, mid);
        timed_out
    }

    pub(crate) fn cond_notify_one(self: &Arc<Self>, me: usize, cvid: usize) {
        let mut st = self.sched.lock().unwrap_or_else(|p| p.into_inner());
        if !st.condvars[cvid].waiters.is_empty() {
            // Which waiter wakes is a real nondeterminism: explore it.
            let n_waiters = st.condvars[cvid].waiters.len();
            let idx = Self::choose(&mut st, n_waiters);
            let w = st.condvars[cvid].waiters.remove(idx).expect("index valid");
            st.threads[w] = Run::Runnable;
        }
        self.pick_next(&mut st, me);
        drop(self.wait_my_turn(st, me));
    }

    pub(crate) fn cond_notify_all(self: &Arc<Self>, me: usize, cvid: usize) {
        let mut st = self.sched.lock().unwrap_or_else(|p| p.into_inner());
        while let Some(w) = st.condvars[cvid].waiters.pop_front() {
            st.threads[w] = Run::Runnable;
        }
        self.pick_next(&mut st, me);
        drop(self.wait_my_turn(st, me));
    }

    // ---- threads -----------------------------------------------------------

    /// Register a new modeled thread and start its OS thread. The new
    /// thread runs only when scheduled.
    pub(crate) fn spawn_thread(
        self: &Arc<Self>,
        f: impl FnOnce() + Send + 'static,
    ) -> usize {
        let mut st = self.sched.lock().unwrap_or_else(|p| p.into_inner());
        st.threads.push(Run::Runnable);
        st.wake_timed_out.push(false);
        st.os_running += 1;
        let tid = st.threads.len() - 1;
        let exec = Arc::clone(self);
        let handle = std::thread::Builder::new()
            .name(format!("loom-{tid}"))
            .spawn(move || exec.thread_main(tid, f))
            .expect("spawn loom thread");
        st.os_handles.push(handle);
        drop(st);
        tid
    }

    fn thread_main(self: Arc<Self>, me: usize, f: impl FnOnce()) {
        CURRENT.with(|c| *c.borrow_mut() = Some((Arc::clone(&self), me)));
        {
            let st = self.sched.lock().unwrap_or_else(|p| p.into_inner());
            drop(self.wait_my_turn(st, me));
        }
        let result = catch_unwind(AssertUnwindSafe(f));
        CURRENT.with(|c| *c.borrow_mut() = None);
        let mut st = self.sched.lock().unwrap_or_else(|p| p.into_inner());
        st.threads[me] = Run::Finished;
        st.os_running -= 1;
        if let Err(payload) = result {
            if !payload.is::<AbortExecution>() && st.panic.is_none() {
                st.panic = Some(payload);
            }
            st.aborting = true;
            self.cv.notify_all();
            return;
        }
        // Joiners of this thread become runnable.
        for t in 0..st.threads.len() {
            if st.threads[t] == Run::BlockedJoin(me) {
                st.threads[t] = Run::Runnable;
            }
        }
        if !st.aborting {
            self.pick_next(&mut st, me);
        }
        self.cv.notify_all();
    }

    /// Block until modeled thread `target` finishes.
    pub(crate) fn join_thread(self: &Arc<Self>, me: usize, target: usize) {
        let mut st = self.sched.lock().unwrap_or_else(|p| p.into_inner());
        if st.threads[target] != Run::Finished {
            st.threads[me] = Run::BlockedJoin(target);
            self.pick_next(&mut st, me);
            st = self.wait_my_turn(st, me);
        }
        debug_assert_eq!(st.threads[target], Run::Finished);
    }
}

// ---- public entry points used by the sync/thread facades -------------------

/// Scheduling point before a visible operation on the calling thread.
pub(crate) fn yield_point() {
    let (exec, me) = current();
    exec.sched_point(me);
}

pub(crate) fn with_current<R>(f: impl FnOnce(&Arc<Execution>, usize) -> R) -> R {
    let (exec, me) = current();
    f(&exec, me)
}

pub(crate) fn try_with_current<R>(f: impl FnOnce(&Arc<Execution>, usize) -> R) -> Option<R> {
    CURRENT.with(|c| c.borrow().clone()).map(|(exec, me)| f(&exec, me))
}

/// Run `f` under the bounded exhaustive scheduler until every schedule
/// (within the preemption bound) has been explored.
pub fn model<F>(f: F)
where
    F: Fn() + Sync + Send + 'static,
{
    let max_preemptions = env_usize("LOOM_MAX_PREEMPTIONS", 2);
    let max_iterations = env_usize("LOOM_MAX_ITERATIONS", 100_000);
    let f = Arc::new(f);
    let mut path: Vec<Choice> = Vec::new();
    let mut iterations: usize = 0;
    loop {
        iterations += 1;
        let exec = Execution::new(max_preemptions, std::mem::take(&mut path));
        let body = Arc::clone(&f);
        exec.spawn_thread(move || body());
        // Drive: wait for every OS thread to exit, then join them.
        let (panic, mut explored_path) = {
            let mut st = exec.sched.lock().unwrap_or_else(|p| p.into_inner());
            while st.os_running > 0 {
                st = exec.cv.wait(st).unwrap_or_else(|p| p.into_inner());
            }
            let handles = std::mem::take(&mut st.os_handles);
            let panic = st.panic.take();
            let p = std::mem::take(&mut st.path);
            drop(st);
            for h in handles {
                let _ = h.join();
            }
            (panic, p)
        };
        if let Some(payload) = panic {
            eprintln!(
                "loom: model failed on schedule {iterations} \
                 (choices: {:?})",
                explored_path
                    .iter()
                    .map(|c| (c.chosen, c.options))
                    .collect::<Vec<_>>()
            );
            resume_unwind(payload);
        }
        // Depth-first advance to the next unexplored schedule.
        loop {
            match explored_path.last_mut() {
                None => {
                    // Every schedule explored.
                    return;
                }
                Some(c) if c.chosen + 1 < c.options => {
                    c.chosen += 1;
                    break;
                }
                Some(_) => {
                    explored_path.pop();
                }
            }
        }
        path = explored_path;
        if iterations >= max_iterations {
            eprintln!(
                "loom: stopping after {iterations} schedules \
                 (LOOM_MAX_ITERATIONS) — exploration incomplete"
            );
            return;
        }
    }
}
