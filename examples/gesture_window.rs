//! The paper's other motivating workload (§1): *"a gesture recognition
//! module may need to analyze a sliding window over a video stream."*
//!
//! ```text
//! cargo run --release --example gesture_window
//! ```
//!
//! A camera streams motion-energy samples; a gesture recognizer analyzes a
//! sliding window of the last 8 samples per iteration (overlapping windows
//! — items are retained across iterations and only released once the window
//! has slid past them); recognized gestures go through a queue to a logger.
//! ARU paces the camera to the recognizer's sustainable period.

use stampede_aru::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

const WINDOW: usize = 8;

fn run(label: &str, aru: AruConfig) {
    let mut b = RuntimeBuilder::new(aru, GcMode::Dgc);
    let samples = b.channel::<Vec<u8>>("motion-samples");
    let gestures = b.queue::<Record<[f32; 4]>>("gestures");
    let camera = b.thread("camera");
    let recognizer = b.thread("recognizer");
    let logger = b.thread("logger");
    let out_samples = b.connect_out(camera, &samples).unwrap();
    let mut in_samples = b.connect_in(&samples, recognizer).unwrap();
    let mut out_gestures = b.connect_queue_out(recognizer, &gestures).unwrap();
    let mut in_gestures = b.connect_queue_in(&gestures, logger).unwrap();

    let produced = Arc::new(AtomicU64::new(0));
    let produced2 = Arc::clone(&produced);
    let mut ts = Timestamp::ZERO;
    b.spawn(camera, move |ctx| {
        // a motion-energy sample: tiny payload, 2 ms capture
        std::thread::sleep(Duration::from_millis(2));
        let sample = vec![(ts.raw() % 251) as u8; 4096];
        out_samples.put(ctx, ts, sample)?;
        ts = ts.next();
        produced2.fetch_add(1, Ordering::Relaxed);
        Ok(Step::Continue)
    });

    b.spawn(recognizer, move |ctx| {
        let window = in_samples.get_latest_window(ctx, WINDOW)?;
        // "analyze" the window: mean/max motion energy over time
        let mut energy = [0.0f32; 4];
        for (i, item) in window.iter().enumerate() {
            energy[i % 4] += item.value[0] as f32 / window.len() as f32;
        }
        std::thread::sleep(Duration::from_millis(12)); // recognition cost
        let newest = window.last().unwrap().ts;
        out_gestures.put(ctx, newest, Record(energy))?;
        Ok(Step::Continue)
    });

    b.spawn(logger, move |ctx| {
        let g = in_gestures.get(ctx)?;
        ctx.emit_output(g.ts);
        Ok(Step::Continue)
    });

    let report = b
        .build()
        .unwrap()
        .run_for(Micros::from_secs(2))
        .unwrap();
    let a = report.analyze();
    println!("--- {label} ---");
    println!(
        "  samples produced: {:>5}   gestures logged: {:>4}",
        produced.load(Ordering::Relaxed),
        report.outputs()
    );
    println!(
        "  wasted memory: {:>5.1}%   mean footprint: {:>6.1} kB",
        a.waste.pct_memory_wasted(),
        a.footprint.observed_summary().mean / 1000.0
    );
}

fn main() {
    println!("Sliding-window gesture pipeline (window = {WINDOW} samples)\n");
    run("No ARU", AruConfig::disabled());
    println!();
    run("ARU-min", AruConfig::aru_min());
    println!(
        "\nNote: with a sliding window the channel must retain the last {}
samples even under ARU — the footprint floor is the window itself.",
        WINDOW - 1
    );
}
