//! The paper's cluster experiments in miniature: run the simulated tracker
//! in both configurations and all three modes, deterministically, in
//! seconds of wall time.
//!
//! ```text
//! cargo run --release --example cluster_sim -- [--secs N]
//! ```
//!
//! (The full table/figure reproduction lives in the `repro` binary:
//! `cargo run -p experiments --release --bin repro -- --exp all`.)

use stampede_aru::prelude::*;
use tracker::{SimTrackerParams, TrackerConfigId};

fn main() {
    let mut secs = 60u64;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--secs" {
            secs = args.next().and_then(|v| v.parse().ok()).expect("--secs N");
        }
    }
    println!("Simulated color tracker, {secs}s virtual runs (seed 2005)\n");
    println!(
        "{:<18} {:<9} {:>9} {:>11} {:>11} {:>9} {:>9}",
        "config", "mode", "fps", "latency ms", "mean MB", "% waste", "outputs"
    );
    for (config, cname) in [
        (TrackerConfigId::OneNode, "config-1 (1 node)"),
        (TrackerConfigId::FiveNodes, "config-2 (5 nodes)"),
    ] {
        for (mode, aru) in [
            ("No ARU", AruConfig::disabled()),
            ("ARU-min", AruConfig::aru_min()),
            ("ARU-max", AruConfig::aru_max()),
        ] {
            let params = SimTrackerParams::new(aru, config)
                .with_duration(Micros::from_secs(secs));
            let report = tracker::app_sim::run_sim(&params);
            let a = report.analyze();
            println!(
                "{:<18} {:<9} {:>9.2} {:>11.0} {:>11.2} {:>9.1} {:>9}",
                cname,
                mode,
                a.perf.throughput_fps,
                a.perf.latency.mean / 1000.0,
                a.footprint.observed_summary().mean / 1e6,
                a.waste.pct_memory_wasted(),
                report.outputs()
            );
        }
    }
    // Per-stage view of one run (the §3.1 stage-rate picture).
    let params = SimTrackerParams::new(AruConfig::disabled(), TrackerConfigId::OneNode)
        .with_duration(Micros::from_secs(secs));
    let report = tracker::app_sim::run_sim(&params);
    println!(
        "\n{}",
        stampede_aru::metrics::thread_stats::render_thread_stats(
            &report.thread_stats(),
            &report.topo
        )
    );
    println!(
        "Same seed -> bit-identical results. Try the full reproduction:\n\
         cargo run -p experiments --release --bin repro -- --exp all"
    );
}
