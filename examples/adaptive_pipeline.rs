//! Adaptation in action: a consumer whose cost *changes mid-run*, and a
//! fan-out where the compress operator decides which consumer the producer
//! sustains.
//!
//! ```text
//! cargo run --release --example adaptive_pipeline
//! ```
//!
//! Part 1 — load step: the analyzer's per-frame cost triples halfway
//! through the run; the summary-STP feedback re-paces the camera within one
//! pipeline latency (watch the production-rate trace).
//!
//! Part 2 — min vs max: one producer feeds a fast preview consumer and a
//! slow archival consumer. `CompressOp::Min` sustains the fast one;
//! `CompressOp::Max` (legal here if only the archive matters) throttles to
//! the slow one.

use stampede_aru::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn load_step_demo() {
    println!("== Part 1: load step (analyzer cost 10 ms -> 30 ms at t=1.5s) ==");
    let mut b = RuntimeBuilder::new(AruConfig::aru_min(), GcMode::Dgc);
    let frames = b.channel::<Vec<u8>>("frames");
    let camera = b.thread("camera");
    let analyzer = b.thread("analyzer");
    let out = b.connect_out(camera, &frames).unwrap();
    let mut inp = b.connect_in(&frames, analyzer).unwrap();

    let produced = Arc::new(AtomicU64::new(0));
    let produced2 = Arc::clone(&produced);
    let mut ts = Timestamp::ZERO;
    b.spawn(camera, move |ctx| {
        std::thread::sleep(Duration::from_millis(1));
        out.put(ctx, ts, vec![0u8; 50_000])?;
        ts = ts.next();
        produced2.fetch_add(1, Ordering::Relaxed);
        Ok(Step::Continue)
    });

    let start = Instant::now();
    b.spawn(analyzer, move |ctx| {
        let item = inp.get_latest(ctx)?;
        let cost = if start.elapsed() > Duration::from_millis(1500) {
            30
        } else {
            10
        };
        std::thread::sleep(Duration::from_millis(cost));
        ctx.emit_output(item.ts);
        Ok(Step::Continue)
    });

    let running = b.build().unwrap().start();
    // Sample the camera's production rate every 500 ms.
    let mut last = 0u64;
    for i in 1..=6 {
        std::thread::sleep(Duration::from_millis(500));
        let now_total = produced.load(Ordering::Relaxed);
        let rate = (now_total - last) as f64 / 0.5;
        println!(
            "  t={:.1}s  camera rate: {:>5.1} items/s   (analyzer period {} ms)",
            i as f64 * 0.5,
            rate,
            if i * 500 > 1500 { 30 } else { 10 }
        );
        last = now_total;
    }
    let report = running.stop().unwrap();
    let waste = report.analyze().waste;
    println!(
        "  final waste: {:.1}% memory — the camera tracked both operating points\n",
        waste.pct_memory_wasted()
    );
}

fn min_vs_max_demo() {
    println!("== Part 2: fan-out, CompressOp::Min vs CompressOp::Max ==");
    for (name, aru) in [("min", AruConfig::aru_min()), ("max", AruConfig::aru_max())] {
        let mut b = RuntimeBuilder::new(aru, GcMode::Dgc);
        let ch = b.channel::<Vec<u8>>("stream");
        let producer = b.thread("producer");
        let preview = b.thread("preview"); // 5 ms
        let archive = b.thread("archive"); // 40 ms
        let out = b.connect_out(producer, &ch).unwrap();
        let mut in_fast = b.connect_in(&ch, preview).unwrap();
        let mut in_slow = b.connect_in(&ch, archive).unwrap();

        let produced = Arc::new(AtomicU64::new(0));
        let produced2 = Arc::clone(&produced);
        let mut ts = Timestamp::ZERO;
        b.spawn(producer, move |ctx| {
            std::thread::sleep(Duration::from_millis(1));
            out.put(ctx, ts, vec![0u8; 10_000])?;
            ts = ts.next();
            produced2.fetch_add(1, Ordering::Relaxed);
            Ok(Step::Continue)
        });
        b.spawn(preview, move |ctx| {
            let item = in_fast.get_latest(ctx)?;
            std::thread::sleep(Duration::from_millis(5));
            ctx.emit_output(item.ts);
            Ok(Step::Continue)
        });
        b.spawn(archive, move |ctx| {
            let item = in_slow.get_latest(ctx)?;
            std::thread::sleep(Duration::from_millis(40));
            ctx.emit_output(item.ts);
            Ok(Step::Continue)
        });

        let report = b
            .build()
            .unwrap()
            .run_for(Micros::from_secs(2))
            .unwrap();
        println!(
            "  ARU-{name}: producer made {:>4} items in 2s  ({})",
            produced.load(Ordering::Relaxed),
            if name == "min" {
                "paced to the 5 ms preview consumer"
            } else {
                "paced to the 40 ms archive consumer"
            }
        );
        let _ = report;
    }
    println!(
        "\nmin is safe for independent consumers; max saves the most when a\n\
         single downstream stage (paper Figure 4) dictates pipeline throughput."
    );
}

fn main() {
    load_step_demo();
    min_vs_max_demo();
}
