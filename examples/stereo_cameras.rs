//! Multi-source pipelines: the paper's stereo use case (§1 — *"a stereo
//! module in an interactive vision application may require images with
//! corresponding timestamps from multiple cameras"*).
//!
//! ```text
//! cargo run --release --example stereo_cameras
//! ```
//!
//! Two cameras with different native rates feed a stereo matcher that
//! pairs frames by exact timestamp. Without ARU the faster camera runs
//! away: the matcher keeps waiting for the slow camera to catch up to
//! ever-newer timestamps, and both cameras burn resources on frames the
//! other side will never match. With ARU both sources are paced by the
//! same downstream summary-STP — the feedback loop acts as an implicit
//! camera synchronizer.

use stampede_aru::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn run(label: &str, aru: AruConfig) {
    let mut b = RuntimeBuilder::new(aru, GcMode::Dgc);
    let left = b.channel::<Vec<u8>>("left-frames");
    let right = b.channel::<Vec<u8>>("right-frames");
    let cam_l = b.thread("camera-left");
    let cam_r = b.thread("camera-right");
    let stereo = b.thread("stereo-matcher");
    let out_l = b.connect_out(cam_l, &left).unwrap();
    let out_r = b.connect_out(cam_r, &right).unwrap();
    let mut in_l = b.connect_in(&left, stereo).unwrap();
    let mut in_r = b.connect_in(&right, stereo).unwrap();

    let made = [Arc::new(AtomicU64::new(0)), Arc::new(AtomicU64::new(0))];
    for (thread, out, period_ms, counter) in [
        (cam_l, out_l, 2u64, Arc::clone(&made[0])),
        (cam_r, out_r, 5u64, Arc::clone(&made[1])),
    ] {
        let mut ts = Timestamp::ZERO;
        b.spawn(thread, move |ctx| {
            std::thread::sleep(Duration::from_millis(period_ms));
            out.put(ctx, ts, vec![0u8; 50_000])?;
            ts = ts.next();
            counter.fetch_add(1, Ordering::Relaxed);
            Ok(Step::Continue)
        });
    }

    let pairs = Arc::new(AtomicU64::new(0));
    let pairs2 = Arc::clone(&pairs);
    b.spawn(stereo, move |ctx| {
        // Drive on the left camera, pair the right frame at the same ts.
        let l = in_l.get_latest(ctx)?;
        let Some(_r) = in_r.get_exact(ctx, l.ts)? else {
            return Ok(Step::Continue); // right frame lost — skip this pair
        };
        std::thread::sleep(Duration::from_millis(25)); // disparity compute
        pairs2.fetch_add(1, Ordering::Relaxed);
        ctx.emit_output(l.ts);
        Ok(Step::Continue)
    });

    let report = b
        .build()
        .unwrap()
        .run_for(Micros::from_secs(2))
        .unwrap();
    let a = report.analyze();
    println!("--- {label} ---");
    println!(
        "  left produced: {:>4}   right produced: {:>4}   stereo pairs: {:>3}",
        made[0].load(Ordering::Relaxed),
        made[1].load(Ordering::Relaxed),
        pairs.load(Ordering::Relaxed)
    );
    println!(
        "  wasted memory: {:>5.1}%   pair latency: {:>5.0} ms",
        a.waste.pct_memory_wasted(),
        a.perf.latency.mean / 1000.0
    );
}

fn main() {
    println!("Stereo pipeline: two cameras (2 ms / 5 ms) -> exact-timestamp matcher (25 ms)\n");
    run("No ARU (cameras free-run at different rates)", AruConfig::disabled());
    println!();
    run("ARU-min (one feedback loop paces both cameras)", AruConfig::aru_min());
    println!(
        "\nWith ARU both cameras converge on the matcher's sustainable period,\n\
         so 'corresponding timestamps' arrive together instead of drifting apart."
    );
}
