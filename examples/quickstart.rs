//! Quickstart: a three-stage streaming pipeline with ARU feedback control.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds `camera → (frames) → analyzer → (results) → display`, runs it
//! twice — once without ARU (the producer floods and most frames are
//! wasted) and once with ARU-min (production locks to the consumer's
//! sustainable rate) — and prints the resource/performance comparison.

use stampede_aru::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn run(label: &str, aru: AruConfig) {
    let mut b = RuntimeBuilder::new(aru, GcMode::Dgc);

    // Channels are timestamped buffers: consumers ask for the *latest*
    // item, skipping stale ones — the paper's interactive-pipeline pattern.
    let frames = b.channel::<Vec<u8>>("frames");
    let results = b.channel::<Vec<u8>>("results");

    let camera = b.thread("camera");
    let analyzer = b.thread("analyzer");
    let display = b.thread("display");

    let out_frames = b.connect_out(camera, &frames).unwrap();
    let mut in_frames = b.connect_in(&frames, analyzer).unwrap();
    let out_results = b.connect_out(analyzer, &results).unwrap();
    let mut in_results = b.connect_in(&results, display).unwrap();

    let produced = Arc::new(AtomicU64::new(0));
    let produced2 = Arc::clone(&produced);

    // Camera: ~2 ms per frame — far faster than the pipeline can consume.
    let mut ts = Timestamp::ZERO;
    b.spawn(camera, move |ctx| {
        std::thread::sleep(Duration::from_millis(2));
        out_frames.put(ctx, ts, vec![0u8; 100_000])?;
        ts = ts.next();
        produced2.fetch_add(1, Ordering::Relaxed);
        Ok(Step::Continue)
    });

    // Analyzer: ~15 ms of work per frame.
    b.spawn(analyzer, move |ctx| {
        let frame = in_frames.get_latest(ctx)?;
        std::thread::sleep(Duration::from_millis(15));
        out_results.put(ctx, frame.ts, vec![0u8; 1_000])?;
        Ok(Step::Continue)
    });

    // Display: ~5 ms per result; this is the pipeline's sink.
    b.spawn(display, move |ctx| {
        let result = in_results.get_latest(ctx)?;
        std::thread::sleep(Duration::from_millis(5));
        ctx.emit_output(result.ts);
        Ok(Step::Continue)
    });

    let report = b
        .build()
        .expect("valid pipeline")
        .run_for(Micros::from_secs(2))
        .expect("clean run");

    let analysis = report.analyze();
    println!("--- {label} ---");
    println!(
        "  frames produced: {:>5}   displayed: {:>4}",
        produced.load(Ordering::Relaxed),
        report.outputs()
    );
    println!(
        "  wasted memory:   {:>5.1}%  wasted computation: {:>5.1}%",
        analysis.waste.pct_memory_wasted(),
        analysis.waste.pct_computation_wasted()
    );
    println!(
        "  mean footprint:  {:>6.1} kB (ideal bound {:.1} kB)",
        analysis.footprint.observed_summary().mean / 1000.0,
        analysis.igc.summary().mean / 1000.0
    );
    println!(
        "  throughput:      {:>5.1} fps   latency: {:.0} ms   jitter: {:.1} ms",
        analysis.perf.throughput_fps,
        analysis.perf.latency.mean / 1000.0,
        analysis.perf.jitter_us / 1000.0
    );
}

fn main() {
    println!("ARU quickstart: camera -> analyzer -> display\n");
    run("No ARU (baseline: producer floods the pipeline)", AruConfig::disabled());
    println!();
    run("ARU-min (production paced by summary-STP feedback)", AruConfig::aru_min());
    println!("\nWith ARU the camera produces only what downstream can use:");
    println!("wasted resources collapse while throughput is preserved.");
}
