//! The paper's evaluation application, live: the color-based people
//! tracker running on the threaded Stampede-like runtime with real vision
//! kernels over synthetic video.
//!
//! ```text
//! cargo run --release --example people_tracker -- [--no-aru|--min|--max] [--secs N]
//! ```
//!
//! Prints the Figure-5 task graph, runs the 6-thread/9-channel pipeline,
//! renders a small ASCII "GUI" of the two tracked targets against ground
//! truth, and ends with the paper's resource/performance metrics.

use stampede_aru::prelude::*;
use tracker::gui::render_tracking;
use tracker::{build_threaded, ThreadedTrackerParams, TrackerGraph};

fn main() {
    let mut aru = AruConfig::aru_min();
    let mut label = "ARU-min";
    let mut secs = 3u64;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--no-aru" => {
                aru = AruConfig::disabled();
                label = "No ARU";
            }
            "--min" => {
                aru = AruConfig::aru_min();
                label = "ARU-min";
            }
            "--max" => {
                aru = AruConfig::aru_max();
                label = "ARU-max";
            }
            "--secs" => {
                secs = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--secs N");
            }
            other => {
                eprintln!("unknown arg {other}; use --no-aru|--min|--max, --secs N");
                std::process::exit(2);
            }
        }
    }

    println!("Color-based people tracker (paper Figure 5), mode: {label}\n");
    println!("{}", TrackerGraph::render());

    let params = ThreadedTrackerParams::new(aru);
    let tracker = build_threaded(&params).expect("tracker builds");
    let video = tracker.video.clone();
    println!("running for {secs}s of wall time…\n");
    let report = tracker
        .runtime
        .run_for(Micros::from_secs(secs))
        .expect("clean run");

    // ASCII "GUI": final detected positions vs ground truth.
    let dets = tracker.detections.lock();
    println!("last tracked positions ('1'/'2' = detections, '+' = ground truth):");
    print!("{}", render_tracking(&dets, &video, 64, 16));

    let analysis = report.analyze();
    println!("\n--- run metrics ({label}) ---");
    println!("  frames displayed:    {}", report.outputs());
    println!(
        "  detections recorded: {} ({} positive)",
        dets.len(),
        dets.iter().filter(|d| d.found == 1).count()
    );
    println!(
        "  wasted memory:       {:.1}%   wasted computation: {:.1}%",
        analysis.waste.pct_memory_wasted(),
        analysis.waste.pct_computation_wasted()
    );
    println!(
        "  mean footprint:      {:.2} MB (ideal bound {:.2} MB)",
        analysis.footprint.observed_summary().mean / 1e6,
        analysis.igc.summary().mean / 1e6
    );
    println!(
        "  throughput:          {:.1} fps   latency {:.0} ms   jitter {:.1} ms",
        analysis.perf.throughput_fps,
        analysis.perf.latency.mean / 1000.0,
        analysis.perf.jitter_us / 1000.0
    );
}
